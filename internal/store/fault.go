package store

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultKind selects what a planned (one-shot) fault injection does.
type FaultKind int

const (
	// FaultTransient makes the operation fail with ErrTransient without
	// touching the device.
	FaultTransient FaultKind = iota
	// FaultTorn applies only a prefix of a write before failing with
	// ErrTransient — the on-media state is a mix of new and old bytes, the
	// write hole the intent log exists to close. On reads it degrades to
	// FaultTransient.
	FaultTorn
	// FaultCorrupt flips one bit of the payload silently: the operation
	// reports success but the stored (or returned) bytes are wrong. A
	// ChecksummedDevice turns this into ErrCorrupt on the next read.
	FaultCorrupt
)

// FaultConfig parameterises a FaultDevice. All rates are probabilities in
// [0, 1] drawn per operation from a deterministic seeded stream, so a
// given seed and operation sequence replays the same fault schedule.
type FaultConfig struct {
	// Seed initialises the fault stream (same seed → same faults for the
	// same operation sequence).
	Seed int64
	// TransientRate is the probability that an operation fails with
	// ErrTransient (retrying it succeeds unless it draws again).
	TransientRate float64
	// TornRate is the probability that a write persists only a prefix of
	// the strip and then fails with ErrTransient.
	TornRate float64
	// CorruptRate is the probability that a write silently flips one bit
	// of the stored strip (reported as success).
	CorruptRate float64
	// SlowRate is the probability that an operation is delayed by SlowBy
	// before executing.
	SlowRate float64
	// SlowBy is the injected latency for slow operations.
	SlowBy time.Duration
	// SlowBurstPeriod/SlowBurstLen define a deterministic slow *burst*
	// schedule keyed to the operation counter instead of the rng: every
	// operation whose index modulo SlowBurstPeriod falls below
	// SlowBurstLen sleeps SlowBy. Unlike SlowRate, bursts replay
	// identically for the same operation sequence regardless of wall
	// clock, which is what hedge/quarantine tests need. Both must be
	// positive for bursts to fire.
	SlowBurstPeriod int64
	SlowBurstLen    int64
	// FailAfterOps, when positive, turns the device permanently failed
	// once that many operations have been admitted: every later operation
	// returns ErrPermanent.
	FailAfterOps int64
}

// FaultStats counts the faults a FaultDevice has injected.
type FaultStats struct {
	Ops, Transient, Torn, Corrupt, Slow int64
	Permanent                           bool
}

// FaultDevice wraps a Device with deterministic, seedable fault injection:
// transient errors, torn writes, silent bit-flips, added latency, and a
// transition to permanent failure — the failure taxonomy the self-healing
// stack (RetryDevice, the engine's health monitor, auto-rebuild) is built
// against. Faults are drawn per operation from the configured rates;
// one-shot faults can additionally be planted per strip with Inject.
type FaultDevice struct {
	inner Device

	mu        sync.Mutex
	cfg       FaultConfig
	rng       *rand.Rand
	planned   map[int64][]FaultKind // per-strip one-shot faults, FIFO
	permanent bool
	stats     FaultStats
}

var _ Device = (*FaultDevice)(nil)

// NewFaultDevice wraps dev with the fault schedule of cfg.
func NewFaultDevice(dev Device, cfg FaultConfig) *FaultDevice {
	return &FaultDevice{
		inner:   dev,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		planned: make(map[int64][]FaultKind),
	}
}

// Strips implements Device.
func (f *FaultDevice) Strips() int64 { return f.inner.Strips() }

// StripBytes implements Device.
func (f *FaultDevice) StripBytes() int { return f.inner.StripBytes() }

// Inner exposes the wrapped device.
func (f *FaultDevice) Inner() Device { return f.inner }

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultDevice) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Permanent = f.permanent
	return st
}

// Inject plants a one-shot fault on strip idx: the next operation touching
// that strip suffers it. Multiple injections queue in FIFO order.
func (f *FaultDevice) Inject(idx int64, kind FaultKind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.planned[idx] = append(f.planned[idx], kind)
}

// FailNow turns the device permanently failed immediately.
func (f *FaultDevice) FailNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.permanent = true
}

// SetTransientRate adjusts the transient-error rate at runtime.
func (f *FaultDevice) SetTransientRate(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.TransientRate = rate
}

// SetSlow adjusts the slow-operation injection at runtime: operations are
// delayed by delay with probability rate.
func (f *FaultDevice) SetSlow(rate float64, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.SlowRate = rate
	f.cfg.SlowBy = delay
}

// SetSlowBurst adjusts the deterministic slow-burst schedule at runtime:
// operations whose index modulo period falls below length sleep delay.
// period <= 0 or length <= 0 disables bursts.
func (f *FaultDevice) SetSlowBurst(period, length int64, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.SlowBurstPeriod = period
	f.cfg.SlowBurstLen = length
	f.cfg.SlowBy = delay
}

// decision is what admit resolves an operation to, drawn under the lock so
// the stream is deterministic; the fault itself executes outside the lock.
type decision struct {
	err   error
	kind  FaultKind
	fault bool
	sleep time.Duration
}

// admit draws the fault decision for one operation on strip idx.
func (f *FaultDevice) admit(idx int64, write bool) decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Ops++
	if f.cfg.FailAfterOps > 0 && f.stats.Ops > f.cfg.FailAfterOps {
		f.permanent = true
	}
	if f.permanent {
		return decision{err: fmt.Errorf("%w: strip %d", ErrPermanent, idx)}
	}
	var d decision
	if f.cfg.SlowBurstPeriod > 0 && f.cfg.SlowBurstLen > 0 &&
		(f.stats.Ops-1)%f.cfg.SlowBurstPeriod < f.cfg.SlowBurstLen {
		f.stats.Slow++
		d.sleep = f.cfg.SlowBy
	}
	// The rng draw below stays in the stream even when a burst already
	// slowed the op, so enabling bursts never shifts the fault schedule.
	if f.cfg.SlowRate > 0 && f.rng.Float64() < f.cfg.SlowRate && d.sleep == 0 {
		f.stats.Slow++
		d.sleep = f.cfg.SlowBy
	}
	// A planted torn fault only makes sense on a write; reads pass it by
	// and leave it armed for the next write.
	if q := f.planned[idx]; len(q) > 0 && (write || q[0] != FaultTorn) {
		d.kind, d.fault = q[0], true
		if len(q) == 1 {
			delete(f.planned, idx)
		} else {
			f.planned[idx] = q[1:]
		}
	} else if write && f.cfg.TornRate > 0 && f.rng.Float64() < f.cfg.TornRate {
		d.kind, d.fault = FaultTorn, true
	} else if write && f.cfg.CorruptRate > 0 && f.rng.Float64() < f.cfg.CorruptRate {
		d.kind, d.fault = FaultCorrupt, true
	} else if f.cfg.TransientRate > 0 && f.rng.Float64() < f.cfg.TransientRate {
		d.kind, d.fault = FaultTransient, true
	}
	if d.fault {
		switch d.kind {
		case FaultTransient:
			f.stats.Transient++
		case FaultTorn:
			f.stats.Torn++
		case FaultCorrupt:
			f.stats.Corrupt++
		}
	}
	return d
}

// ReadStrip implements Device.
func (f *FaultDevice) ReadStrip(idx int64, p []byte) error {
	d := f.admit(idx, false)
	if d.sleep > 0 {
		time.Sleep(d.sleep)
	}
	if d.err != nil {
		return d.err
	}
	if d.fault {
		switch d.kind {
		case FaultCorrupt:
			// Deliver the real content with one bit flipped.
			if err := f.inner.ReadStrip(idx, p); err != nil {
				return err
			}
			if len(p) > 0 {
				p[0] ^= 0x01
			}
			return nil
		default: // transient (torn degrades to transient on reads)
			return fmt.Errorf("%w: read strip %d", ErrTransient, idx)
		}
	}
	return f.inner.ReadStrip(idx, p)
}

// WriteStrip implements Device.
func (f *FaultDevice) WriteStrip(idx int64, p []byte) error {
	d := f.admit(idx, true)
	if d.sleep > 0 {
		time.Sleep(d.sleep)
	}
	if d.err != nil {
		return d.err
	}
	if d.fault {
		switch d.kind {
		case FaultTorn:
			// Persist the new prefix over the old suffix, then fail: the
			// strip on media is torn, exactly what a power cut mid-write
			// leaves behind.
			old := make([]byte, f.inner.StripBytes())
			if err := f.inner.ReadStrip(idx, old); err == nil {
				copy(old[:len(old)/2], p[:len(p)/2])
				if err := f.inner.WriteStrip(idx, old); err != nil {
					return err
				}
			}
			return fmt.Errorf("%w: torn write of strip %d", ErrTransient, idx)
		case FaultCorrupt:
			bad := append([]byte(nil), p...)
			if len(bad) > 0 {
				bad[0] ^= 0x01
			}
			return f.inner.WriteStrip(idx, bad)
		default:
			return fmt.Errorf("%w: write strip %d", ErrTransient, idx)
		}
	}
	return f.inner.WriteStrip(idx, p)
}

// Close implements Device.
func (f *FaultDevice) Close() error { return f.inner.Close() }
