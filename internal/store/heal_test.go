package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/oiraid/oiraid/internal/layout"
)

// newChecksummedArray builds an OI-RAID array whose devices are all
// checksummed mem devices, returning the raw inner devices for
// behind-the-back corruption.
func newChecksummedArray(t *testing.T, v int) (*Array, []*MemDevice) {
	t.Helper()
	an := oiAnalyzer(t, v)
	devs := make([]Device, an.Disks())
	inner := make([]*MemDevice, an.Disks())
	for i := range devs {
		mem, err := NewMemDevice(2*int64(an.SlotsPerDisk()), testStrip)
		if err != nil {
			t.Fatal(err)
		}
		inner[i] = mem
		devs[i] = NewChecksummedDevice(mem)
	}
	arr, err := NewArray(an, devs)
	if err != nil {
		t.Fatal(err)
	}
	return arr, inner
}

// TestReadRepairWritesBack: the first read of a corrupted strip pays a
// reconstruction and heals the device in place; the second read is served
// directly, with no further degraded read.
func TestReadRepairWritesBack(t *testing.T) {
	arr, inner := newChecksummedArray(t, 9)
	fillArray(t, arr, 21)

	// Corrupt the device strip backing logical data strip 0 behind the
	// checksum wrapper.
	d, devStrip := arr.locate(0)
	buf := make([]byte, testStrip)
	if err := inner[d].ReadStrip(devStrip, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if err := inner[d].WriteStrip(devStrip, buf); err != nil {
		t.Fatal(err)
	}

	arr.ResetStats()
	want := make([]byte, arr.StripBytes())
	if _, err := arr.ReadAt(want, 0); err != nil {
		t.Fatal(err)
	}
	st := arr.Stats()
	if st.ReadRepairs != 1 || st.DegradedReads != 1 {
		t.Fatalf("first read: repairs=%d degraded=%d, want 1/1", st.ReadRepairs, st.DegradedReads)
	}

	// Second read: no reconstruction cost, same content.
	arr.ResetStats()
	got := make([]byte, arr.StripBytes())
	if _, err := arr.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	st = arr.Stats()
	if st.DegradedReads != 0 || st.ReadRepairs != 0 {
		t.Fatalf("second read still degraded: %+v", st)
	}
	if st.ReadOps != 1 {
		t.Fatalf("second read used %d device reads, want 1", st.ReadOps)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("healed strip content differs between reads")
	}
	// The device itself holds the healed content (checksum now passes).
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub after repair: %d bad, %v", bad, err)
	}
}

// TestReconstructHealsCorruptSource: a degraded read whose *source* strip
// is corrupt treats it as one more erasure, decodes around it, and heals
// the source in place.
func TestReconstructHealsCorruptSource(t *testing.T) {
	arr, inner := newChecksummedArray(t, 9)
	fillArray(t, arr, 22)

	// Fail the disk of logical strip 0, then corrupt one of the surviving
	// strips its reconstruction will read.
	d0, devStrip0 := arr.locate(0)
	if err := arr.FailDisk(d0); err != nil {
		t.Fatal(err)
	}
	slots := int64(arr.an.SlotsPerDisk())
	cycle, slot := devStrip0/slots, int(devStrip0%slots)
	target := layout.Strip{Disk: d0, Slot: slot}
	alive := func(disk int) bool { return !arr.failed[disk] }
	info, ok := arr.an.DecodePath(target, alive)
	if !ok {
		t.Fatal("no decode path for single failure")
	}
	var src int // member position of a live source strip
	for mi, st := range info.Members {
		if st.Disk != d0 {
			src = mi
			break
		}
	}
	srcStrip := info.Members[src]
	srcIdx := cycle*slots + int64(srcStrip.Slot)
	buf := make([]byte, testStrip)
	if err := inner[srcStrip.Disk].ReadStrip(srcIdx, buf); err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), buf...)
	buf[3] ^= 0x80
	if err := inner[srcStrip.Disk].WriteStrip(srcIdx, buf); err != nil {
		t.Fatal(err)
	}

	arr.ResetStats()
	p := make([]byte, arr.StripBytes())
	if _, err := arr.ReadAt(p, 0); err != nil {
		t.Fatalf("degraded read with corrupt source: %v", err)
	}
	if st := arr.Stats(); st.ReadRepairs != 1 {
		t.Fatalf("corrupt source not healed: %+v", st)
	}
	if err := inner[srcStrip.Disk].ReadStrip(srcIdx, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("source strip not restored to original content")
	}
}

// TestTornWriteCrashRecovery is the crash/restart leg of the chaos suite:
// a torn write (power cut mid-commit) leaves a cycle dirty in the file
// intent log; reopening the array and replaying the log restores parity
// consistency, and every strip the interrupted write did not target still
// matches the oracle.
func TestTornWriteCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	an := oiAnalyzer(t, 9)
	strips := 2 * int64(an.SlotsPerDisk())

	img := func(i int) string { return filepath.Join(dir, fmt.Sprintf("disk%02d.img", i)) }
	faults := make([]*FaultDevice, an.Disks())
	open := func(create bool) *Array {
		t.Helper()
		devs := make([]Device, an.Disks())
		for i := range devs {
			var fd *FileDevice
			var err error
			if create {
				fd, err = NewFileDevice(img(i), strips, testStrip)
			} else {
				fd, err = OpenFileDevice(img(i), strips, testStrip)
			}
			if err != nil {
				t.Fatal(err)
			}
			faults[i] = NewFaultDevice(fd, FaultConfig{})
			devs[i] = faults[i]
		}
		arr, err := NewArray(an, devs)
		if err != nil {
			t.Fatal(err)
		}
		intent, err := OpenFileIntentLog(filepath.Join(dir, "intent.log"))
		if err != nil {
			t.Fatal(err)
		}
		arr.SetIntentLog(intent)
		return arr
	}

	arr := open(true)
	fillArray(t, arr, 33)
	oracle := make([]byte, arr.Capacity())
	if _, err := arr.ReadAt(oracle, 0); err != nil {
		t.Fatal(err)
	}

	// Tear the next write that lands on the target data strip's disk, then
	// "crash" without clearing the intent log.
	const victim = int64(5) // logical data strip the interrupted write targets
	d, devStrip := arr.locate(victim)
	faults[d].Inject(devStrip, FaultTorn)
	fresh := bytes.Repeat([]byte{0xE7}, arr.StripBytes())
	if _, err := arr.WriteAt(fresh, victim*int64(arr.StripBytes())); err == nil {
		// The torn write may have hit a parity strip of the closure first
		// and aborted there, or the data strip itself; either way an error
		// must surface — unless the commit order wrote other strips first
		// and the data strip later. A nil error would mean the injection
		// never fired.
		t.Fatal("interrupted write reported success")
	}
	// Crash: abandon the array without recovery; reopen from the images.
	for i := range faults {
		faults[i].Close()
	}

	arr = open(false)
	n, err := arr.RecoverIntent()
	if err != nil {
		t.Fatalf("RecoverIntent: %v", err)
	}
	if n == 0 {
		t.Fatal("intent log had no pending cycle to replay")
	}
	// Parity is consistent again, whichever half of the interrupted update
	// reached the media.
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub after recovery: %d bad, %v", bad, err)
	}
	// Every strip outside the interrupted write matches the oracle.
	got := make([]byte, arr.Capacity())
	if _, err := arr.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	sb := int64(arr.StripBytes())
	for s := int64(0); s*sb < arr.Capacity(); s++ {
		if s == victim {
			continue
		}
		if !bytes.Equal(got[s*sb:(s+1)*sb], oracle[s*sb:(s+1)*sb]) {
			t.Fatalf("strip %d damaged by crash recovery", s)
		}
	}
}
