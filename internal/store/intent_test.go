package store

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestMemIntentLog(t *testing.T) {
	l := NewMemIntentLog()
	if err := l.Record(3); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(1); err != nil {
		t.Fatal(err)
	}
	p, err := l.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[0] != 1 || p[1] != 3 {
		t.Fatalf("pending = %v", p)
	}
	if err := l.Clear(3); err != nil {
		t.Fatal(err)
	}
	p, _ = l.Pending()
	if len(p) != 1 || p[0] != 1 {
		t.Fatalf("pending after clear = %v", p)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileIntentLogSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intent.log")
	l, err := OpenFileIntentLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int64{7, 2, 7} { // nested record on 7
		if err := l.Record(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Clear(7); err != nil { // one of two clears
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: cycle 7 still has one outstanding record, cycle 2 pending.
	l2, err := OpenFileIntentLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	p, err := l2.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[0] != 2 || p[1] != 7 {
		t.Fatalf("pending after reopen = %v", p)
	}
}

// TestWriteHoleRecovery simulates the classic crash: a data strip reaches
// the media but its parity updates do not. The intent log remembers the
// dirty cycle, and RecoverIntent re-synchronises it; the stripe is
// consistent again (scrub-clean) and further failures are survivable.
func TestWriteHoleRecovery(t *testing.T) {
	an := oiAnalyzer(t, 9)
	arr, err := NewMemArray(an, 2, testStrip)
	if err != nil {
		t.Fatal(err)
	}
	log := NewMemIntentLog()
	arr.SetIntentLog(log)
	fillArray(t, arr, 21)

	// Normal operation leaves nothing pending.
	if p, _ := log.Pending(); len(p) != 0 {
		t.Fatalf("pending after clean writes = %v", p)
	}

	// "Crash": write a data strip directly to its device, skipping parity,
	// and record the intent as an interrupted WriteAt would have.
	d, devStrip := arr.locate(5)
	cycle := devStrip / int64(an.SlotsPerDisk())
	if err := log.Record(cycle); err != nil {
		t.Fatal(err)
	}
	torn := bytes.Repeat([]byte{0xDD}, testStrip)
	if err := arr.devs[d].WriteStrip(devStrip, torn); err != nil {
		t.Fatal(err)
	}
	bad, err := arr.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Fatal("torn write left no inconsistency; test broken")
	}

	// Recovery: the dirty cycle is re-synchronised.
	n, err := arr.RecoverIntent()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d cycles, want 1", n)
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub after recovery: bad=%d err=%v", bad, err)
	}
	if p, _ := log.Pending(); len(p) != 0 {
		t.Fatalf("pending after recovery = %v", p)
	}
	// Parity now protects the torn data: fail the disk and read it back.
	if err := arr.FailDisk(d); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testStrip)
	if _, err := arr.ReadAt(got, 5*testStrip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, torn) {
		t.Fatal("recovered parity does not protect the committed data")
	}
}

// TestFileIntentLogEndToEnd: the file-backed log drives the same recovery
// across a process "restart" (reopening the log).
func TestFileIntentLogEndToEnd(t *testing.T) {
	an := oiAnalyzer(t, 9)
	arr, err := NewMemArray(an, 1, testStrip)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "intent.log")
	log, err := OpenFileIntentLog(path)
	if err != nil {
		t.Fatal(err)
	}
	arr.SetIntentLog(log)
	fillArray(t, arr, 5)

	// Crash mid-write.
	if err := log.Record(0); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, testStrip)
	rand.New(rand.NewSource(9)).Read(raw)
	d, devStrip := arr.locate(0)
	if err := arr.devs[d].WriteStrip(devStrip, raw); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the log, attach, recover.
	log2, err := OpenFileIntentLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	arr.SetIntentLog(log2)
	n, err := arr.RecoverIntent()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d cycles, want 1", n)
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub: bad=%d err=%v", bad, err)
	}
}

func TestRecoverIntentRequiresHealthyArray(t *testing.T) {
	an := oiAnalyzer(t, 9)
	arr, err := NewMemArray(an, 1, testStrip)
	if err != nil {
		t.Fatal(err)
	}
	// No log attached: no-op.
	if n, err := arr.RecoverIntent(); err != nil || n != 0 {
		t.Fatalf("no-log recovery = (%d, %v)", n, err)
	}
	arr.SetIntentLog(NewMemIntentLog())
	arr.FailDisk(0)
	if _, err := arr.RecoverIntent(); err == nil {
		t.Fatal("recovery on degraded array must fail")
	}
}
