package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Blob is the flat byte store the durable metadata plane (superblocks,
// metadata journal, intent log) is written to. Unlike Device it is
// byte-granular and exposes Sync, the barrier that separates "written"
// from "durable": nothing a Blob implementation accepts through WriteAt
// is guaranteed to survive a power failure until Sync returns. CrashBlob
// models exactly that contract for the power-fail test harness.
type Blob interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes every previously accepted write durable.
	Sync() error
	// Size returns the current length in bytes.
	Size() (int64, error)
	// Truncate resizes the blob.
	Truncate(size int64) error
	// Close releases resources without an implicit Sync.
	Close() error
}

// FileBlob is a file-backed Blob; Sync is fsync.
type FileBlob struct {
	mu sync.Mutex
	f  *os.File
}

var _ Blob = (*FileBlob)(nil)

// CreateFileBlob opens (or creates) a file blob at path. When the file is
// newly created the containing directory is synced, so the directory
// entry itself survives a crash.
func CreateFileBlob(path string) (*FileBlob, error) {
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: blob %s: %w", path, err)
	}
	if os.IsNotExist(statErr) {
		if err := SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &FileBlob{f: f}, nil
}

// OpenFileBlob opens an existing file blob at path.
func OpenFileBlob(path string) (*FileBlob, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("store: blob %s: %w", path, err)
	}
	return &FileBlob{f: f}, nil
}

// AtomicWriteFile replaces path with data so that after a crash the file
// holds either the old content or the new, never a torn mix. The full
// sequence matters: write a temp file, fsync the temp file (rename makes
// the *name* point at the inode, not the inode's pages durable), rename
// over path, then fsync the directory so the rename itself survives.
// Skipping the temp-file fsync is the classic bug: the rename can reach
// media before the data does, leaving an empty or garbage file under the
// final name.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making recent entry creations and removals
// inside it durable. POSIX requires this extra step after creating a
// file: fsyncing the file alone does not persist its directory entry.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}

// ReadAt implements Blob.
func (b *FileBlob) ReadAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return 0, ErrClosed
	}
	return b.f.ReadAt(p, off)
}

// WriteAt implements Blob.
func (b *FileBlob) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return 0, ErrClosed
	}
	return b.f.WriteAt(p, off)
}

// Sync implements Blob.
func (b *FileBlob) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return ErrClosed
	}
	return b.f.Sync()
}

// Size implements Blob.
func (b *FileBlob) Size() (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return 0, ErrClosed
	}
	info, err := b.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Truncate implements Blob.
func (b *FileBlob) Truncate(size int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return ErrClosed
	}
	return b.f.Truncate(size)
}

// Close implements Blob.
func (b *FileBlob) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}

// MemBlob is an in-memory Blob for tests and volatile metadata.
type MemBlob struct {
	mu   sync.RWMutex
	data []byte
}

var _ Blob = (*MemBlob)(nil)

// NewMemBlob returns an empty in-memory blob.
func NewMemBlob() *MemBlob { return &MemBlob{} }

// NewMemBlobBytes returns an in-memory blob seeded with data (copied).
func NewMemBlobBytes(data []byte) *MemBlob {
	return &MemBlob{data: append([]byte(nil), data...)}
}

// Bytes returns a copy of the blob's content.
func (b *MemBlob) Bytes() []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]byte(nil), b.data...)
}

// ReadAt implements Blob with os.File semantics: a read crossing the end
// returns the available prefix and io.EOF.
func (b *MemBlob) ReadAt(p []byte, off int64) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("%w: %d", ErrNegativeOffset, off)
	}
	if off >= int64(len(b.data)) {
		return 0, io.EOF
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements Blob, growing the blob as needed.
func (b *MemBlob) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("%w: %d", ErrNegativeOffset, off)
	}
	if end := off + int64(len(p)); end > int64(len(b.data)) {
		grown := make([]byte, end)
		copy(grown, b.data)
		b.data = grown
	}
	return copy(b.data[off:], p), nil
}

// Sync implements Blob (a no-op: memory has no volatile cache).
func (b *MemBlob) Sync() error { return nil }

// Size implements Blob.
func (b *MemBlob) Size() (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return int64(len(b.data)), nil
}

// Truncate implements Blob.
func (b *MemBlob) Truncate(size int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("%w: %d", ErrNegativeOffset, size)
	}
	if size <= int64(len(b.data)) {
		b.data = b.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, b.data)
		b.data = grown
	}
	return nil
}

// Close implements Blob.
func (b *MemBlob) Close() error { return nil }

// readBlobAll reads a blob's entire content into memory.
func readBlobAll(b Blob) ([]byte, error) {
	size, err := b.Size()
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return nil, nil
	}
	buf := make([]byte, size)
	n, err := b.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}
