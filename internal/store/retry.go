package store

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds how a RetryDevice (or any caller using Backoff)
// retries transient errors: a capped number of attempts, exponential
// backoff with jitter between them, and an overall per-operation deadline.
// Permanent errors are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation, including
	// the first (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 500µs);
	// each further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff (default 50ms).
	MaxDelay time.Duration
	// OpDeadline caps the total time spent on one operation, sleeps
	// included (default 0: unbounded).
	OpDeadline time.Duration
	// Seed initialises the jitter stream, making retry schedules
	// reproducible.
	Seed int64
}

// withDefaults fills zero fields with the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 500 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	return p
}

// Backoff returns the delay before retry number retry (0-based): an
// exponential of BaseDelay capped at MaxDelay, scaled by a jitter factor
// in [0.5, 1.5) drawn from rng (nil rng: no jitter).
func (p RetryPolicy) Backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << uint(retry)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	if rng != nil {
		d = time.Duration(float64(d) * (0.5 + rng.Float64()))
	}
	return d
}

// RetryStats counts a RetryDevice's outcomes.
type RetryStats struct {
	// Ops is the number of operations admitted.
	Ops int64
	// Retries is the number of re-issued attempts.
	Retries int64
	// Absorbed is the number of operations that failed transiently at
	// least once and then succeeded — faults the caller never saw.
	Absorbed int64
	// Exhausted is the number of operations that stayed transient through
	// every allowed attempt and surfaced the error.
	Exhausted int64
}

// RetryDevice wraps a Device with the retry policy: transient errors
// (store.IsTransient) are retried with exponential backoff and jitter up
// to the policy's attempt and deadline bounds; permanent and semantic
// errors surface immediately.
type RetryDevice struct {
	inner Device
	pol   RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand

	ops, retries, absorbed, exhausted int64 // guarded by mu
}

var _ Device = (*RetryDevice)(nil)

// NewRetryDevice wraps dev with pol (zero fields take defaults).
func NewRetryDevice(dev Device, pol RetryPolicy) *RetryDevice {
	pol = pol.withDefaults()
	return &RetryDevice{inner: dev, pol: pol, rng: rand.New(rand.NewSource(pol.Seed))}
}

// Strips implements Device.
func (r *RetryDevice) Strips() int64 { return r.inner.Strips() }

// StripBytes implements Device.
func (r *RetryDevice) StripBytes() int { return r.inner.StripBytes() }

// Inner exposes the wrapped device.
func (r *RetryDevice) Inner() Device { return r.inner }

// Stats returns a snapshot of the retry counters.
func (r *RetryDevice) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RetryStats{Ops: r.ops, Retries: r.retries, Absorbed: r.absorbed, Exhausted: r.exhausted}
}

// do runs op under the retry policy.
func (r *RetryDevice) do(op func() error) error {
	r.mu.Lock()
	r.ops++
	r.mu.Unlock()
	start := time.Now()
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			if attempt > 0 {
				r.mu.Lock()
				r.absorbed++
				r.mu.Unlock()
			}
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		if attempt >= r.pol.MaxAttempts-1 {
			break
		}
		r.mu.Lock()
		delay := r.pol.Backoff(attempt, r.rng)
		r.retries++
		r.mu.Unlock()
		if r.pol.OpDeadline > 0 && time.Since(start)+delay > r.pol.OpDeadline {
			break
		}
		time.Sleep(delay)
	}
	r.mu.Lock()
	r.exhausted++
	r.mu.Unlock()
	return fmt.Errorf("store: %d attempt(s) exhausted: %w", r.pol.MaxAttempts, err)
}

// ReadStrip implements Device.
func (r *RetryDevice) ReadStrip(idx int64, p []byte) error {
	return r.do(func() error { return r.inner.ReadStrip(idx, p) })
}

// WriteStrip implements Device.
func (r *RetryDevice) WriteStrip(idx int64, p []byte) error {
	return r.do(func() error { return r.inner.WriteStrip(idx, p) })
}

// Close implements Device.
func (r *RetryDevice) Close() error { return r.inner.Close() }
