package store

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func newFaultMem(t *testing.T, cfg FaultConfig) *FaultDevice {
	t.Helper()
	mem, err := NewMemDevice(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	return NewFaultDevice(mem, cfg)
}

// TestFaultTransientAndPermanent: rate-driven transient errors surface as
// ErrTransient; after FailAfterOps every operation is ErrPermanent.
func TestFaultTransientAndPermanent(t *testing.T) {
	f := newFaultMem(t, FaultConfig{Seed: 1, TransientRate: 0.5, FailAfterOps: 100})
	p := make([]byte, 64)
	var transient int
	for i := 0; i < 100; i++ {
		err := f.ReadStrip(int64(i%8), p)
		switch {
		case err == nil:
		case IsTransient(err):
			transient++
		default:
			t.Fatalf("op %d: unexpected error %v", i, err)
		}
	}
	if transient == 0 || transient == 100 {
		t.Fatalf("transient rate 0.5 produced %d/100 faults", transient)
	}
	// Ops 101+ are permanently failed.
	if err := f.ReadStrip(0, p); !errors.Is(err, ErrPermanent) {
		t.Fatalf("want ErrPermanent after FailAfterOps, got %v", err)
	}
	if err := f.WriteStrip(0, p); !errors.Is(err, ErrPermanent) {
		t.Fatalf("want ErrPermanent write, got %v", err)
	}
	if st := f.Stats(); !st.Permanent || st.Transient != int64(transient) {
		t.Fatalf("stats %+v want permanent with %d transients", st, transient)
	}
}

// TestFaultDeterminism: the same seed replays the same fault schedule.
func TestFaultDeterminism(t *testing.T) {
	run := func() []bool {
		f := newFaultMem(t, FaultConfig{Seed: 42, TransientRate: 0.3})
		p := make([]byte, 64)
		out := make([]bool, 50)
		for i := range out {
			out[i] = f.ReadStrip(int64(i%8), p) != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
	}
}

// TestFaultInjectTorn: a planted torn write persists only a prefix and
// reports ErrTransient; re-issuing the write completes it.
func TestFaultInjectTorn(t *testing.T) {
	f := newFaultMem(t, FaultConfig{})
	old := bytes.Repeat([]byte{0xAA}, 64)
	if err := f.WriteStrip(3, old); err != nil {
		t.Fatal(err)
	}
	f.Inject(3, FaultTorn)
	fresh := bytes.Repeat([]byte{0x55}, 64)
	if err := f.WriteStrip(3, fresh); !IsTransient(err) {
		t.Fatalf("want transient torn-write error, got %v", err)
	}
	got := make([]byte, 64)
	if err := f.ReadStrip(3, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, old) || bytes.Equal(got, fresh) {
		t.Fatalf("strip should be torn, got uniform %#x", got[0])
	}
	if !bytes.Equal(got[:32], fresh[:32]) || !bytes.Equal(got[32:], old[32:]) {
		t.Fatal("torn strip is not new-prefix/old-suffix")
	}
	// The retried write heals the tear.
	if err := f.WriteStrip(3, fresh); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadStrip(3, got); err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("retried write not applied: %v", err)
	}
}

// TestFaultCorruptDetectedByChecksum: a silent bit-flip on write surfaces
// as ErrCorrupt through a ChecksummedDevice.
func TestFaultCorruptDetectedByChecksum(t *testing.T) {
	f := newFaultMem(t, FaultConfig{})
	c := NewChecksummedDevice(f)
	p := bytes.Repeat([]byte{7}, 64)
	if err := c.WriteStrip(2, p); err != nil {
		t.Fatal(err)
	}
	f.Inject(2, FaultCorrupt)
	if err := c.WriteStrip(2, p); err != nil {
		t.Fatal(err) // silent: the write itself reports success
	}
	got := make([]byte, 64)
	if err := c.ReadStrip(2, got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestRetryAbsorbsTransients: bounded retries hide transient faults from
// the caller and the stats record the absorption.
func TestRetryAbsorbsTransients(t *testing.T) {
	f := newFaultMem(t, FaultConfig{})
	r := NewRetryDevice(f, RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Microsecond, Seed: 9})
	f.Inject(1, FaultTransient)
	f.Inject(1, FaultTransient)
	p := bytes.Repeat([]byte{3}, 64)
	if err := r.WriteStrip(1, p); err != nil {
		t.Fatalf("retry should absorb two transients: %v", err)
	}
	st := r.Stats()
	if st.Absorbed != 1 || st.Retries < 2 || st.Exhausted != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRetryExhaustsAndSurfacesTransient: a fault that never clears
// surfaces as ErrTransient after MaxAttempts tries.
func TestRetryExhaustsAndSurfacesTransient(t *testing.T) {
	f := newFaultMem(t, FaultConfig{TransientRate: 1})
	r := NewRetryDevice(f, RetryPolicy{MaxAttempts: 3, BaseDelay: 20 * time.Microsecond})
	p := make([]byte, 64)
	if err := r.ReadStrip(0, p); !IsTransient(err) {
		t.Fatalf("want surfaced ErrTransient, got %v", err)
	}
	if st := r.Stats(); st.Exhausted != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := f.Stats().Ops; got != 3 {
		t.Fatalf("inner saw %d attempts, want 3", got)
	}
}

// TestRetryPermanentNotRetried: permanent errors surface on the first
// attempt.
func TestRetryPermanentNotRetried(t *testing.T) {
	f := newFaultMem(t, FaultConfig{})
	f.FailNow()
	r := NewRetryDevice(f, RetryPolicy{MaxAttempts: 5, BaseDelay: 20 * time.Microsecond})
	p := make([]byte, 64)
	if err := r.ReadStrip(0, p); !errors.Is(err, ErrPermanent) {
		t.Fatalf("want ErrPermanent, got %v", err)
	}
	if got := f.Stats().Ops; got != 1 {
		t.Fatalf("inner saw %d attempts, want 1 (no retry of permanent)", got)
	}
}

// TestRetryDeadline: the per-op deadline stops the retry loop early.
func TestRetryDeadline(t *testing.T) {
	f := newFaultMem(t, FaultConfig{TransientRate: 1})
	r := NewRetryDevice(f, RetryPolicy{
		MaxAttempts: 1000,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		OpDeadline:  25 * time.Millisecond,
	})
	p := make([]byte, 64)
	start := time.Now()
	if err := r.ReadStrip(0, p); !IsTransient(err) {
		t.Fatalf("want ErrTransient, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline not honoured: %v", elapsed)
	}
}

// TestFaultSlowBurstSchedule: the burst schedule is keyed to the op
// counter — exactly the first SlowBurstLen ops of every SlowBurstPeriod
// window are slow, replaying identically run after run.
func TestFaultSlowBurstSchedule(t *testing.T) {
	f := newFaultMem(t, FaultConfig{
		SlowBurstPeriod: 10,
		SlowBurstLen:    3,
		SlowBy:          time.Microsecond,
	})
	p := make([]byte, 64)
	for i := 0; i < 100; i++ {
		if err := f.ReadStrip(int64(i%8), p); err != nil {
			t.Fatal(err)
		}
	}
	if st := f.Stats(); st.Slow != 30 {
		t.Fatalf("100 ops with 3-in-10 bursts injected %d slow ops, want 30", st.Slow)
	}
	// Disabling the burst stops the injection.
	f.SetSlowBurst(0, 0, 0)
	for i := 0; i < 20; i++ {
		if err := f.ReadStrip(int64(i%8), p); err != nil {
			t.Fatal(err)
		}
	}
	if st := f.Stats(); st.Slow != 30 {
		t.Fatalf("disabled burst still injected: %d slow ops", st.Slow)
	}
}

// TestFaultSlowBurstKeepsFaultSchedule: enabling bursts must not shift
// the rng-driven fault stream — the same seed draws the same transient
// schedule with and without bursts.
func TestFaultSlowBurstKeepsFaultSchedule(t *testing.T) {
	run := func(burst bool) []bool {
		f := newFaultMem(t, FaultConfig{Seed: 42, TransientRate: 0.3})
		if burst {
			f.SetSlowBurst(5, 2, time.Microsecond)
		}
		p := make([]byte, 64)
		out := make([]bool, 80)
		for i := range out {
			out[i] = f.ReadStrip(int64(i%8), p) != nil
		}
		return out
	}
	plain, bursty := run(false), run(true)
	for i := range plain {
		if plain[i] != bursty[i] {
			t.Fatalf("burst shifted the fault schedule at op %d", i)
		}
	}
}

// TestFaultSetSlowConcurrent: SetSlow/SetSlowBurst racing live I/O is
// safe (exercised under -race).
func TestFaultSetSlowConcurrent(t *testing.T) {
	f := newFaultMem(t, FaultConfig{Seed: 7})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := make([]byte, 64)
			for i := 0; i < 300; i++ {
				idx := int64((w + i) % 8)
				if i%2 == 0 {
					_ = f.ReadStrip(idx, p)
				} else {
					_ = f.WriteStrip(idx, p)
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()
	for i := 0; ; i++ {
		select {
		case <-done:
			if st := f.Stats(); st.Ops != 4*300 {
				t.Fatalf("workload ran %d ops, want %d", st.Ops, 4*300)
			}
			return
		default:
		}
		f.SetSlow(0.5, time.Microsecond)
		f.SetSlowBurst(4, 1, time.Microsecond)
		f.SetSlow(0, 0)
		f.SetSlowBurst(0, 0, 0)
		_ = f.Stats()
	}
}
