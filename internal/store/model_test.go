package store

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/oiraid/oiraid/internal/bibd"
	"github.com/oiraid/oiraid/internal/core"
	"github.com/oiraid/oiraid/internal/layout"
)

// TestArrayModelRandomOps drives the array with a random sequence of
// writes, reads, disk failures, and rebuilds, checking every read against
// a plain in-memory reference model. This is the end-to-end invariant of
// the whole data plane: under any interleaving of operations within the
// fault tolerance, the array behaves exactly like a flat byte buffer.
func TestArrayModelRandomOps(t *testing.T) {
	configs := []struct {
		name string
		mk   func() (*core.Analyzer, error)
		tol  int
	}{
		{"oi-raid-9", func() (*core.Analyzer, error) {
			d, err := bibd.ForArray(9)
			if err != nil {
				return nil, err
			}
			s, err := layout.NewOIRAID(d)
			if err != nil {
				return nil, err
			}
			return core.NewAnalyzer(s)
		}, 3},
		{"oi-raid-9-pi2", func() (*core.Analyzer, error) {
			d, err := bibd.ForArray(9)
			if err != nil {
				return nil, err
			}
			s, err := layout.NewOIRAID(d, layout.WithInnerParity(2))
			if err != nil {
				return nil, err
			}
			return core.NewAnalyzer(s)
		}, 5},
		{"raid6-7", func() (*core.Analyzer, error) {
			s, err := layout.NewRAID6(7)
			if err != nil {
				return nil, err
			}
			return core.NewAnalyzer(s)
		}, 2},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			an, err := cfg.mk()
			if err != nil {
				t.Fatal(err)
			}
			arr, err := NewMemArray(an, 2, 128)
			if err != nil {
				t.Fatal(err)
			}
			model := make([]byte, arr.Capacity())
			if _, err := arr.WriteAt(model, 0); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(321))
			failed := map[int]bool{}

			for op := 0; op < 300; op++ {
				switch choice := rng.Intn(10); {
				case choice < 4: // random write
					n := 1 + rng.Intn(700)
					off := rng.Int63n(arr.Capacity() - int64(n))
					buf := make([]byte, n)
					rng.Read(buf)
					if _, err := arr.WriteAt(buf, off); err != nil {
						t.Fatalf("op %d write: %v", op, err)
					}
					copy(model[off:], buf)
				case choice < 8: // random read, compared to the model
					n := 1 + rng.Intn(700)
					off := rng.Int63n(arr.Capacity() - int64(n))
					buf := make([]byte, n)
					if _, err := arr.ReadAt(buf, off); err != nil {
						t.Fatalf("op %d read: %v", op, err)
					}
					if !bytes.Equal(buf, model[off:off+int64(n)]) {
						t.Fatalf("op %d: read mismatch at %d (failed disks %v)", op, off, failed)
					}
				case choice == 8: // fail a disk, staying within tolerance
					if len(failed) >= cfg.tol {
						continue
					}
					d := rng.Intn(an.Disks())
					if failed[d] {
						continue
					}
					if err := arr.FailDisk(d); err != nil {
						t.Fatalf("op %d fail: %v", op, err)
					}
					failed[d] = true
				default: // rebuild everything
					if len(failed) == 0 {
						continue
					}
					for d := range failed {
						dev, err := NewMemDevice(2*int64(an.SlotsPerDisk()), 128)
						if err != nil {
							t.Fatal(err)
						}
						if err := arr.ReplaceDisk(d, dev); err != nil {
							t.Fatal(err)
						}
					}
					if err := arr.Rebuild(); err != nil {
						t.Fatalf("op %d rebuild: %v", op, err)
					}
					failed = map[int]bool{}
					if bad, err := arr.Scrub(); err != nil || bad != 0 {
						t.Fatalf("op %d scrub after rebuild: bad=%d err=%v", op, bad, err)
					}
				}
			}
			// Final full comparison (rebuild first if degraded).
			buf := make([]byte, arr.Capacity())
			if _, err := arr.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, model) {
				t.Fatal("final content mismatch")
			}
		})
	}
}
