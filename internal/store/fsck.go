package store

import (
	"errors"
	"fmt"

	"github.com/oiraid/oiraid/internal/erasure"
	"github.com/oiraid/oiraid/internal/layout"
)

// FsckIssue is one inconsistency found by Fsck.
type FsckIssue struct {
	// Kind is "checksum" (a strip failing its durable checksum) or
	// "parity" (a stripe whose members do not verify).
	Kind string `json:"kind"`
	// Cycle locates the damage in the layout.
	Cycle int64 `json:"cycle"`
	// Stripe is the stripe index within the cycle (parity issues).
	Stripe int `json:"stripe,omitempty"`
	// Layer is "outer" or "inner" (parity issues).
	Layer string `json:"layer,omitempty"`
	// Disk/Slot locate the strip (checksum issues).
	Disk int `json:"disk,omitempty"`
	Slot int `json:"slot,omitempty"`
	// Repaired reports whether the repair pass fixed it.
	Repaired bool `json:"repaired"`
}

func (is FsckIssue) String() string {
	state := "damaged"
	if is.Repaired {
		state = "repaired"
	}
	if is.Kind == "checksum" {
		return fmt.Sprintf("checksum: cycle %d disk %d slot %d (%s)", is.Cycle, is.Disk, is.Slot, state)
	}
	return fmt.Sprintf("parity: cycle %d stripe %d [%s] (%s)", is.Cycle, is.Stripe, is.Layer, state)
}

// FsckReport summarises a full two-layer verification pass.
type FsckReport struct {
	Cycles         int64 `json:"cycles"`
	StripsChecked  int64 `json:"strips_checked"`
	StripesChecked int64 `json:"stripes_checked"`
	ChecksumErrors int   `json:"checksum_errors"`
	ParityErrors   int   `json:"parity_errors"`
	Repaired       int   `json:"repaired"`
	// Clean is true when no damage remains: nothing found, or everything
	// found was repaired.
	Clean bool `json:"clean"`
	// Truncated reports that Issues was capped (the counters still cover
	// everything).
	Truncated bool        `json:"truncated,omitempty"`
	Issues    []FsckIssue `json:"issues,omitempty"`
}

// maxFsckIssues caps the itemised issue list in a report.
const maxFsckIssues = 1024

// innerDevice is the unwrap hook every instrumenting wrapper (retry,
// probe, fault, checksum) implements.
type innerDevice interface{ Inner() Device }

// checksummedOf walks a wrapper chain down to its ChecksummedDevice, or
// nil when the chain has none.
func checksummedOf(dev Device) *ChecksummedDevice {
	for dev != nil {
		if cd, ok := dev.(*ChecksummedDevice); ok {
			return cd
		}
		iw, ok := dev.(innerDevice)
		if !ok {
			return nil
		}
		dev = iw.Inner()
	}
	return nil
}

// Fsck walks both redundancy layers of the whole array, verifying every
// strip against its durable checksum and every stripe (outer BIBD layer
// and inner RAID5 layer) against its parity. With repair set, checksum
// failures are reconstructed from parity and rewritten, and inconsistent
// stripes get their parity recomputed from data (outer layer first, since
// outer parity strips are data members of inner stripes).
//
// The checksum pass trusts parity (it reconstructs from it) and the
// parity pass trusts data — the same assumptions as read repair and
// Repair respectively. The array must be healthy; it is locked for the
// duration, so route calls through Engine.Fsck on a serving array.
func (a *Array) Fsck(repair bool) (*FsckReport, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, f := range a.failed {
		if f {
			return nil, ErrDiskFaulty
		}
	}
	rep := &FsckReport{Cycles: a.cycles}
	slots := int64(a.an.SlotsPerDisk())
	addIssue := func(is FsckIssue) {
		if len(rep.Issues) >= maxFsckIssues {
			rep.Truncated = true
			return
		}
		rep.Issues = append(rep.Issues, is)
	}

	buf := make([]byte, a.stripBytes)
	for cycle := int64(0); cycle < a.cycles; cycle++ {
		// Pass A: durable checksums, healed from parity when repairing.
		for d := range a.devs {
			dev := a.device(d)
			for slot := int64(0); slot < slots; slot++ {
				devStrip := cycle*slots + slot
				rep.StripsChecked++
				a.stats.readOps.Add(1)
				err := dev.ReadStrip(devStrip, buf)
				if err == nil {
					continue
				}
				if !errors.Is(err, ErrCorrupt) {
					return rep, err
				}
				a.stats.corruptStrips.Add(1)
				rep.ChecksumErrors++
				is := FsckIssue{Kind: "checksum", Cycle: cycle, Disk: d, Slot: int(slot)}
				if repair {
					if err := a.reconstructStrip(d, devStrip, buf); err != nil {
						addIssue(is)
						continue
					}
					a.stats.writeOps.Add(1)
					a.stats.readRepairs.Add(1)
					if err := dev.WriteStrip(devStrip, buf); err != nil {
						return rep, err
					}
					is.Repaired = true
					rep.Repaired++
				}
				addIssue(is)
			}
		}

		// Pass B: parity consistency, outer layer first. Reads bypass
		// checksum verification so a (reported) checksum issue does not
		// mask the parity result.
		for _, pass := range []layout.Layer{layout.LayerOuter, layout.LayerInner} {
			for si, stripe := range a.sch.Stripes() {
				if (pass == layout.LayerOuter) != (stripe.Layer == layout.LayerOuter) {
					continue
				}
				code := a.codes[[2]int{stripe.Data, stripe.Parity()}]
				shards := erasure.AllocShards(stripe.Data, stripe.Parity(), a.stripBytes)
				for mi, st := range stripe.Strips {
					devStrip := cycle*slots + int64(st.Slot)
					dev := a.device(st.Disk)
					a.stats.readOps.Add(1)
					var err error
					if cd := checksummedOf(dev); cd != nil {
						err = cd.ReadStripRaw(devStrip, shards[mi])
					} else {
						err = dev.ReadStrip(devStrip, shards[mi])
					}
					if err != nil {
						return rep, err
					}
				}
				rep.StripesChecked++
				ok, err := code.Verify(shards)
				if err != nil {
					return rep, fmt.Errorf("store: fsck stripe %d: %w", si, err)
				}
				if ok {
					continue
				}
				rep.ParityErrors++
				layerName := "inner"
				if stripe.Layer == layout.LayerOuter {
					layerName = "outer"
				}
				is := FsckIssue{Kind: "parity", Cycle: cycle, Stripe: si, Layer: layerName}
				if repair {
					if err := code.Encode(shards); err != nil {
						return rep, err
					}
					for mi := stripe.Data; mi < len(stripe.Strips); mi++ {
						st := stripe.Strips[mi]
						a.stats.writeOps.Add(1)
						if err := a.device(st.Disk).WriteStrip(cycle*slots+int64(st.Slot), shards[mi]); err != nil {
							return rep, err
						}
					}
					is.Repaired = true
					rep.Repaired++
				}
				addIssue(is)
			}
		}
	}
	rep.Clean = rep.ChecksumErrors+rep.ParityErrors == rep.Repaired
	return rep, nil
}
