package store

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"

	"github.com/oiraid/oiraid/internal/layout"
)

// IntentLog records which layout cycles have in-flight read-modify-writes,
// closing the RAID write hole: a crash between a data-strip write and its
// parity updates leaves the stripe inconsistent, and the log tells
// recovery exactly which cycles to re-synchronise. Implementations must
// persist Record before returning (to the extent their medium allows).
type IntentLog interface {
	// Record marks the cycle dirty.
	Record(cycle int64) error
	// Clear unmarks the cycle.
	Clear(cycle int64) error
	// Pending lists cycles recorded but never cleared (after a crash).
	Pending() ([]int64, error)
	// Close releases resources.
	Close() error
}

// MemIntentLog is an in-memory IntentLog for tests and volatile arrays.
// Like FileIntentLog it reference-counts records, so a cycle left dirty by
// an aborted write stays pending even when later writes to the same cycle
// complete cleanly.
type MemIntentLog struct {
	mu    sync.Mutex
	dirty map[int64]int
}

var _ IntentLog = (*MemIntentLog)(nil)

// NewMemIntentLog returns an empty in-memory log.
func NewMemIntentLog() *MemIntentLog { return &MemIntentLog{dirty: make(map[int64]int)} }

// Record implements IntentLog.
func (m *MemIntentLog) Record(cycle int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirty[cycle]++
	return nil
}

// Clear implements IntentLog.
func (m *MemIntentLog) Clear(cycle int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirty[cycle] > 0 {
		m.dirty[cycle]--
	}
	if m.dirty[cycle] <= 0 {
		delete(m.dirty, cycle)
	}
	return nil
}

// Pending implements IntentLog.
func (m *MemIntentLog) Pending() ([]int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, 0, len(m.dirty))
	for c := range m.dirty {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Close implements IntentLog.
func (m *MemIntentLog) Close() error { return nil }

// FileIntentLog persists dirty cycles as an append-only text log
// ("+<cycle>" on Record, "-<cycle>" on Clear); Pending replays it. The
// log is compacted whenever no cycles are outstanding.
type FileIntentLog struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	dirty    map[int64]int // reference counts (nested writes to one cycle)
	appended int
}

var _ IntentLog = (*FileIntentLog)(nil)

// OpenFileIntentLog opens (or creates) the log at path, preserving any
// pending entries from a previous run.
func OpenFileIntentLog(path string) (*FileIntentLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: intent log: %w", err)
	}
	l := &FileIntentLog{path: path, f: f, dirty: make(map[int64]int)}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if len(line) < 2 {
			continue
		}
		cycle, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			continue // torn final line after a crash
		}
		switch line[0] {
		case '+':
			l.dirty[cycle]++
			l.appended++
		case '-':
			if l.dirty[cycle] > 0 {
				l.dirty[cycle]--
				if l.dirty[cycle] == 0 {
					delete(l.dirty, cycle)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: intent log: %w", err)
	}
	return l, nil
}

// Record implements IntentLog.
func (l *FileIntentLog) Record(cycle int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := fmt.Fprintf(l.f, "+%d\n", cycle); err != nil {
		return err
	}
	l.dirty[cycle]++
	l.appended++
	return nil
}

// Clear implements IntentLog.
func (l *FileIntentLog) Clear(cycle int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := fmt.Fprintf(l.f, "-%d\n", cycle); err != nil {
		return err
	}
	if l.dirty[cycle] > 0 {
		l.dirty[cycle]--
		if l.dirty[cycle] == 0 {
			delete(l.dirty, cycle)
		}
	}
	// Compact opportunistically once the log has grown and nothing is
	// outstanding.
	if len(l.dirty) == 0 && l.appended > 1024 {
		if err := l.f.Truncate(0); err == nil {
			if _, err := l.f.Seek(0, 0); err != nil {
				return err
			}
			l.appended = 0
		}
	}
	return nil
}

// Pending implements IntentLog.
func (l *FileIntentLog) Pending() ([]int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int64, 0, len(l.dirty))
	for c := range l.dirty {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Close implements IntentLog.
func (l *FileIntentLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// SetIntentLog attaches a write-intent log to the array. Every
// read-modify-write records its cycle before touching devices and clears
// it after the commit; RecoverIntent re-synchronises the cycles a crash
// left dirty.
func (a *Array) SetIntentLog(log IntentLog) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.intent = log
}

// RecoverIntent repairs every stripe of the cycles the intent log reports
// pending — the post-crash write-hole fix: parity is recomputed from data
// (outer layer first), restoring stripe consistency whichever half of the
// interrupted update reached the media. It returns the number of cycles
// re-synchronised. The array must be healthy.
func (a *Array) RecoverIntent() (cycles int, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.intent == nil {
		return 0, nil
	}
	for _, f := range a.failed {
		if f {
			return 0, ErrDiskFailed
		}
	}
	pending, err := a.intent.Pending()
	if err != nil {
		return 0, err
	}
	slots := int64(a.an.SlotsPerDisk())
	for _, cycle := range pending {
		if cycle < 0 || cycle >= a.cycles {
			continue
		}
		for _, pass := range []layout.Layer{layout.LayerOuter, layout.LayerInner} {
			if err := a.repairCycleLayer(cycle, slots, pass); err != nil {
				return cycles, err
			}
		}
		// Aborted writes can leave more than one outstanding record on a
		// cycle; the repair covered them all, so drain the refcount.
		for {
			if err := a.intent.Clear(cycle); err != nil {
				return cycles, err
			}
			still, err := a.intent.Pending()
			if err != nil {
				return cycles, err
			}
			outstanding := false
			for _, c := range still {
				if c == cycle {
					outstanding = true
					break
				}
			}
			if !outstanding {
				break
			}
		}
		cycles++
	}
	return cycles, nil
}
