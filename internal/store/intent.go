package store

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"github.com/oiraid/oiraid/internal/layout"
)

// IntentLog records which layout cycles have in-flight read-modify-writes,
// closing the RAID write hole: a crash between a data-strip write and its
// parity updates leaves the stripe inconsistent, and the log tells
// recovery exactly which cycles to re-synchronise. Implementations must
// persist Record before returning (to the extent their medium allows).
type IntentLog interface {
	// Record marks the cycle dirty.
	Record(cycle int64) error
	// Clear unmarks the cycle.
	Clear(cycle int64) error
	// Pending lists cycles recorded but never cleared (after a crash).
	Pending() ([]int64, error)
	// Close releases resources.
	Close() error
}

// MemIntentLog is an in-memory IntentLog for tests and volatile arrays.
// Like FileIntentLog it reference-counts records, so a cycle left dirty by
// an aborted write stays pending even when later writes to the same cycle
// complete cleanly.
type MemIntentLog struct {
	mu    sync.Mutex
	dirty map[int64]int
}

var _ IntentLog = (*MemIntentLog)(nil)

// NewMemIntentLog returns an empty in-memory log.
func NewMemIntentLog() *MemIntentLog { return &MemIntentLog{dirty: make(map[int64]int)} }

// Record implements IntentLog.
func (m *MemIntentLog) Record(cycle int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirty[cycle]++
	return nil
}

// Clear implements IntentLog.
func (m *MemIntentLog) Clear(cycle int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dirty[cycle] > 0 {
		m.dirty[cycle]--
	}
	if m.dirty[cycle] <= 0 {
		delete(m.dirty, cycle)
	}
	return nil
}

// Pending implements IntentLog.
func (m *MemIntentLog) Pending() ([]int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, 0, len(m.dirty))
	for c := range m.dirty {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Close implements IntentLog.
func (m *MemIntentLog) Close() error { return nil }

// FileIntentLog persists dirty cycles as an append-only text log
// ("+<cycle>" on Record, "-<cycle>" on Clear); Pending replays it. Every
// Record and Clear is fsynced before returning, honouring the IntentLog
// durability contract; opening via OpenFileIntentLog also fsyncs the
// containing directory when the log file is newly created, so the entry
// itself survives a crash. The log is compacted whenever no cycles are
// outstanding.
type FileIntentLog struct {
	mu       sync.Mutex
	b        Blob
	size     int64         // append offset
	dirty    map[int64]int // reference counts (nested writes to one cycle)
	appended int
}

var _ IntentLog = (*FileIntentLog)(nil)

// OpenFileIntentLog opens (or creates, syncing the directory entry) the
// log at path, preserving any pending entries from a previous run.
func OpenFileIntentLog(path string) (*FileIntentLog, error) {
	b, err := CreateFileBlob(path)
	if err != nil {
		return nil, fmt.Errorf("store: intent log: %w", err)
	}
	l, err := NewBlobIntentLog(b)
	if err != nil {
		b.Close()
		return nil, err
	}
	return l, nil
}

// NewBlobIntentLog opens an intent log over an arbitrary Blob (the crash
// harness passes a CrashBlob to test the durability contract).
func NewBlobIntentLog(b Blob) (*FileIntentLog, error) {
	data, err := readBlobAll(b)
	if err != nil {
		return nil, fmt.Errorf("store: intent log: %w", err)
	}
	l := &FileIntentLog{b: b, size: int64(len(data)), dirty: make(map[int64]int)}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) < 2 {
			continue
		}
		cycle, err := strconv.ParseInt(string(line[1:]), 10, 64)
		if err != nil {
			continue // torn final line after a crash
		}
		switch line[0] {
		case '+':
			l.dirty[cycle]++
			l.appended++
		case '-':
			if l.dirty[cycle] > 0 {
				l.dirty[cycle]--
				if l.dirty[cycle] == 0 {
					delete(l.dirty, cycle)
				}
			}
		}
	}
	return l, nil
}

// append writes one entry at the tail and fsyncs it.
func (l *FileIntentLog) append(entry string) error {
	if _, err := l.b.WriteAt([]byte(entry), l.size); err != nil {
		return err
	}
	l.size += int64(len(entry))
	return l.b.Sync()
}

// Record implements IntentLog; the entry is durable when it returns.
func (l *FileIntentLog) Record(cycle int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.append(fmt.Sprintf("+%d\n", cycle)); err != nil {
		return err
	}
	l.dirty[cycle]++
	l.appended++
	return nil
}

// Clear implements IntentLog; the entry is durable when it returns.
func (l *FileIntentLog) Clear(cycle int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.append(fmt.Sprintf("-%d\n", cycle)); err != nil {
		return err
	}
	if l.dirty[cycle] > 0 {
		l.dirty[cycle]--
		if l.dirty[cycle] == 0 {
			delete(l.dirty, cycle)
		}
	}
	// Compact opportunistically once the log has grown and nothing is
	// outstanding.
	if len(l.dirty) == 0 && l.appended > 1024 {
		if err := l.b.Truncate(0); err == nil {
			if err := l.b.Sync(); err != nil {
				return err
			}
			l.size = 0
			l.appended = 0
		}
	}
	return nil
}

// Pending implements IntentLog.
func (l *FileIntentLog) Pending() ([]int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int64, 0, len(l.dirty))
	for c := range l.dirty {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Close implements IntentLog.
func (l *FileIntentLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.b == nil {
		return nil
	}
	err := l.b.Close()
	l.b = nil
	return err
}

// SetIntentLog attaches a write-intent log to the array. Every
// read-modify-write records its cycle before touching devices and clears
// it after the commit; RecoverIntent re-synchronises the cycles a crash
// left dirty. Attaching a ClosureLogger (the metadata journal) upgrades
// the bracket to redo logging.
func (a *Array) SetIntentLog(log IntentLog) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.intent = log
}

// RecoverIntent closes the write hole after a crash and returns the
// number of cycles re-synchronised.
//
// With a ClosureLogger attached, recovery replays the pending redo
// records: each carries the full consistent content of its parity
// closure, computed before the interrupted commit started, so rewriting
// the live strips restores consistency regardless of which subset of the
// original writes reached the media — and it is sound even while disks
// are failed (strips on dead disks are simply skipped; the rebuild
// reconstructs them from the now-consistent stripes). Replay can never
// rewind an acknowledged write: a read-modify-write refuses to commit
// while a record from a different write overlaps its closure
// (ErrIntentConflict), so any record still pending has had no overlapping
// commit acknowledged after it was recorded.
//
// With a plain IntentLog, recovery recomputes parity from data for every
// pending cycle (outer layer first). That requires a healthy array: with
// a disk failed there is no authoritative copy to recompute from.
func (a *Array) RecoverIntent() (cycles int, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.intent == nil {
		return 0, nil
	}
	if closure, ok := a.intent.(ClosureLogger); ok {
		return a.replayClosures(closure)
	}
	for _, f := range a.failed {
		if f {
			return 0, ErrDiskFailed
		}
	}
	pending, err := a.intent.Pending()
	if err != nil {
		return 0, err
	}
	slots := int64(a.an.SlotsPerDisk())
	for _, cycle := range pending {
		if cycle < 0 || cycle >= a.cycles {
			continue
		}
		for _, pass := range []layout.Layer{layout.LayerOuter, layout.LayerInner} {
			if err := a.repairCycleLayer(cycle, slots, pass); err != nil {
				return cycles, err
			}
		}
		// Aborted writes can leave more than one outstanding record on a
		// cycle; the repair covered them all, so drain the refcount.
		for {
			if err := a.intent.Clear(cycle); err != nil {
				return cycles, err
			}
			still, err := a.intent.Pending()
			if err != nil {
				return cycles, err
			}
			outstanding := false
			for _, c := range still {
				if c == cycle {
					outstanding = true
					break
				}
			}
			if !outstanding {
				break
			}
		}
		cycles++
	}
	return cycles, nil
}

// replayClosures redoes every pending closure onto the live devices.
// Caller holds mu.
func (a *Array) replayClosures(closure ClosureLogger) (int, error) {
	pending, err := closure.PendingClosures()
	if err != nil {
		return 0, err
	}
	slots := int64(a.an.SlotsPerDisk())
	replayed := make(map[int64]bool)
	for _, pc := range pending {
		for _, su := range pc.Strips {
			if su.Disk < 0 || su.Disk >= len(a.devs) ||
				su.Slot < 0 || int64(su.Slot) >= slots ||
				pc.Cycle < 0 || pc.Cycle >= a.cycles ||
				len(su.Data) != a.stripBytes {
				continue // stale record from a different geometry
			}
			devStrip := pc.Cycle*slots + int64(su.Slot)
			dev := a.liveDevice(su.Disk, devStrip)
			if dev == nil {
				continue // failed disk: the rebuild reconstructs it
			}
			a.stats.writeOps.Add(1)
			if err := dev.WriteStrip(devStrip, su.Data); err != nil {
				return len(replayed), fmt.Errorf("%w: strip (%d,%d) of cycle %d: %v",
					ErrIntentReplay, su.Disk, su.Slot, pc.Cycle, err)
			}
		}
		if err := closure.ClearClosure(pc.Cycle, pc.Strips); err != nil {
			return len(replayed), err
		}
		replayed[pc.Cycle] = true
	}
	return len(replayed), nil
}
