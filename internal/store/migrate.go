package store

import (
	"fmt"
	"sync"
)

// MirrorDevice duplicates writes onto a second device while a healthy
// disk's strips are being migrated to a new home. Reads are served by
// the source (the destination is incomplete until the copy finishes), so
// foreground latency never depends on the destination; a destination
// write failure is absorbed into the dirty set instead of failing the
// foreground operation, and the migration re-copies those strips before
// it flips placement.
//
// The mirror is installed outermost over the source's existing wrapper
// chain (checksums, retries, health probes), so source semantics — sum
// recording, eviction accounting — are exactly what they were without
// the mirror. The destination is written raw: its errors must not count
// toward the source disk's health, and its checksums are already durable
// in the journal from the source-side writes of identical bytes.
type MirrorDevice struct {
	src, dst Device

	mu    sync.Mutex
	dirty map[int64]struct{}
}

var _ Device = (*MirrorDevice)(nil)

// NewMirrorDevice builds a mirror over src that forwards writes to dst.
func NewMirrorDevice(src, dst Device) *MirrorDevice {
	return &MirrorDevice{src: src, dst: dst, dirty: map[int64]struct{}{}}
}

// Strips implements Device.
func (m *MirrorDevice) Strips() int64 { return m.src.Strips() }

// StripBytes implements Device.
func (m *MirrorDevice) StripBytes() int { return m.src.StripBytes() }

// ReadStrip implements Device: reads come from the source only.
func (m *MirrorDevice) ReadStrip(idx int64, p []byte) error {
	return m.src.ReadStrip(idx, p)
}

// WriteStrip implements Device: the source write decides the outcome
// (foreground semantics unchanged); the destination write is best-effort
// with failures recorded as dirty strips for the migration to re-copy.
func (m *MirrorDevice) WriteStrip(idx int64, p []byte) error {
	if err := m.src.WriteStrip(idx, p); err != nil {
		// The source state is unknown (the write may have half-landed on
		// retry paths): whatever the caller does next, make sure the
		// migration re-reads this strip before trusting the destination.
		m.markDirty(idx)
		return err
	}
	if err := m.dst.WriteStrip(idx, p); err != nil {
		m.markDirty(idx)
	}
	return nil
}

// Close implements Device, closing the source side only — the
// destination's lifecycle belongs to the migration that created it.
func (m *MirrorDevice) Close() error { return m.src.Close() }

// Source returns the wrapped source device.
func (m *MirrorDevice) Source() Device { return m.src }

// Inner implements the wrapper-chain walk (fsck, checksummedOf): the
// mirror is transparent, the source chain is the device that counts.
func (m *MirrorDevice) Inner() Device { return m.src }

// Destination returns the destination device writes are mirrored to.
func (m *MirrorDevice) Destination() Device { return m.dst }

func (m *MirrorDevice) markDirty(idx int64) {
	m.mu.Lock()
	m.dirty[idx] = struct{}{}
	m.mu.Unlock()
}

// Dirty returns the strips whose destination copy is stale (a mirrored
// write did not land). The migration must re-copy them, with foreground
// writes excluded, before the flip.
func (m *MirrorDevice) Dirty() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, 0, len(m.dirty))
	for idx := range m.dirty {
		out = append(out, idx)
	}
	return out
}

// DirtyCount returns the number of stale destination strips.
func (m *MirrorDevice) DirtyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirty)
}

// ClearDirty drops idx from the dirty set after a successful re-copy.
func (m *MirrorDevice) ClearDirty(idx int64) {
	m.mu.Lock()
	delete(m.dirty, idx)
	m.mu.Unlock()
}

// CloneSuperblock writes disk's current superblock image into b and
// rebinds the disk's superblock slot to it. Unlike RebindSuperblock
// (the heal path, where the old copy is dead anyway), the clone keeps
// the old blob valid at the same epoch: during a migration flip both
// placements hold a mountable superblock, so a crash on either side of
// the manifest commit mounts a healthy array — from the source if the
// commit did not land, from the destination if it did.
func (m *ArrayMeta) CloneSuperblock(disk int, b Blob) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if disk < 0 || disk >= len(m.sbs) {
		return fmt.Errorf("%w: disk %d of %d", ErrNoSuchDisk, disk, len(m.sbs))
	}
	if b == nil {
		return fmt.Errorf("%w: nil superblock blob for disk %d", ErrBadGeometry, disk)
	}
	if err := b.Truncate(0); err != nil {
		return err
	}
	sb := m.sb
	sb.DiskIndex = disk
	sb.DiskUUID = m.diskUUIDs[disk]
	sb.Generation = m.sb.Epoch
	if err := WriteSuperblock(b, &sb); err != nil {
		return err
	}
	m.sbs[disk] = b
	return nil
}

// StartMirror installs a migration mirror on healthy disk d: from now on
// every write to the disk lands on dst too, while reads stay on the
// current device. The installation takes the exclusive array lock, so no
// in-flight operation can slip a write past the mirror.
func (a *Array) StartMirror(d int, dst Device) (*MirrorDevice, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d < 0 || d >= len(a.devs) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchDisk, d)
	}
	if a.failed[d] {
		// A failed disk's data moves via rebuild, not migration.
		return nil, fmt.Errorf("%w: disk %d", ErrDiskFaulty, d)
	}
	if _, ok := a.devs[d].(*MirrorDevice); ok {
		return nil, fmt.Errorf("store: disk %d already migrating", d)
	}
	if dst.StripBytes() != a.stripBytes || dst.Strips() < a.cycles*int64(a.an.SlotsPerDisk()) {
		return nil, fmt.Errorf("%w: migration destination for disk %d", ErrBadGeometry, d)
	}
	m := NewMirrorDevice(a.devs[d], dst)
	a.devs[d] = m
	return m, nil
}

// Mirror returns the migration mirror installed on disk d, nil if none.
func (a *Array) Mirror(d int) *MirrorDevice {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if d < 0 || d >= len(a.devs) {
		return nil
	}
	m, _ := a.devs[d].(*MirrorDevice)
	return m
}

// DropMirror uninstalls disk d's migration mirror, restoring the source
// device — the abort path when a migration cannot finish.
func (a *Array) DropMirror(d int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d < 0 || d >= len(a.devs) {
		return fmt.Errorf("%w: %d", ErrNoSuchDisk, d)
	}
	m, ok := a.devs[d].(*MirrorDevice)
	if !ok {
		return nil
	}
	a.devs[d] = m.src
	return nil
}

// SwapDisk atomically replaces disk d's device with dev — the flip at
// the end of a migration. It requires the mirror to be installed and
// clean (every mirrored write landed or was re-copied): the caller must
// have quiesced writes, drained the dirty set, and committed the new
// placement before calling, because after SwapDisk returns the source
// receives nothing.
func (a *Array) SwapDisk(d int, dev Device) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if d < 0 || d >= len(a.devs) {
		return fmt.Errorf("%w: %d", ErrNoSuchDisk, d)
	}
	m, ok := a.devs[d].(*MirrorDevice)
	if !ok {
		return fmt.Errorf("store: disk %d has no migration in flight", d)
	}
	if n := m.DirtyCount(); n != 0 {
		return fmt.Errorf("store: disk %d migration has %d dirty strips", d, n)
	}
	if dev.StripBytes() != a.stripBytes || dev.Strips() < a.cycles*int64(a.an.SlotsPerDisk()) {
		return fmt.Errorf("%w: migration destination for disk %d", ErrBadGeometry, d)
	}
	if a.meta != nil && checksummedOf(dev) == nil {
		// Seed with the journal's sums for the disk: the destination holds
		// byte-identical content, so reads verify from the first strip.
		dev = NewDurableChecksummedDevice(dev, d, a.meta.Journal().Sums(d), a.meta.Journal())
	}
	a.devs[d] = dev
	return nil
}
