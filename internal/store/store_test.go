package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"github.com/oiraid/oiraid/internal/bibd"
	"github.com/oiraid/oiraid/internal/core"
	"github.com/oiraid/oiraid/internal/layout"
)

const testStrip = 512

func oiAnalyzer(t testing.TB, v int) *core.Analyzer {
	t.Helper()
	d, err := bibd.ForArray(v)
	if err != nil {
		t.Fatal(err)
	}
	s, err := layout.NewOIRAID(d)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func newOIArray(t testing.TB, v int) *Array {
	t.Helper()
	arr, err := NewMemArray(oiAnalyzer(t, v), 2, testStrip)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func analyzerFor(t testing.TB, s layout.Scheme, err error) *core.Analyzer {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalyzer(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// fillArray writes a deterministic pattern over the whole data space and
// returns its hash.
func fillArray(t testing.TB, arr *Array, seed int64) [32]byte {
	t.Helper()
	content := make([]byte, arr.Capacity())
	rng := rand.New(rand.NewSource(seed))
	for i := range content {
		content[i] = byte(rng.Intn(256))
	}
	if n, err := arr.WriteAt(content, 0); err != nil || int64(n) != arr.Capacity() {
		t.Fatalf("fill: wrote %d of %d: %v", n, arr.Capacity(), err)
	}
	return sha256.Sum256(content)
}

func hashArray(t testing.TB, arr *Array) [32]byte {
	t.Helper()
	content := make([]byte, arr.Capacity())
	if n, err := arr.ReadAt(content, 0); err != nil || int64(n) != arr.Capacity() {
		t.Fatalf("read back %d of %d: %v", n, arr.Capacity(), err)
	}
	return sha256.Sum256(content)
}

func TestMemDeviceRoundTrip(t *testing.T) {
	dev, err := NewMemDevice(10, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := bytes.Repeat([]byte{0xAB}, 64)
	if err := dev.WriteStrip(3, p); err != nil {
		t.Fatal(err)
	}
	q := make([]byte, 64)
	if err := dev.ReadStrip(3, q); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, q) {
		t.Fatal("content mismatch")
	}
	if err := dev.ReadStrip(10, q); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("expected ErrOutOfRange, got %v", err)
	}
	if err := dev.WriteStrip(0, q[:10]); err == nil {
		t.Fatal("short buffer must fail")
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadStrip(0, q); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
	if _, err := NewMemDevice(0, 64); err == nil {
		t.Fatal("zero strips must fail")
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk0.img")
	dev, err := NewFileDevice(path, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	p := bytes.Repeat([]byte{0x5C}, 128)
	if err := dev.WriteStrip(7, p); err != nil {
		t.Fatal(err)
	}
	q := make([]byte, 128)
	if err := dev.ReadStrip(7, q); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, q) {
		t.Fatal("content mismatch")
	}
	if err := dev.ReadStrip(8, q); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("expected ErrOutOfRange, got %v", err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteStrip(0, p); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

func TestArrayWriteReadRoundTrip(t *testing.T) {
	arr := newOIArray(t, 9)
	want := fillArray(t, arr, 1)
	if got := hashArray(t, arr); got != want {
		t.Fatal("read-back hash differs from written content")
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub: bad=%d err=%v", bad, err)
	}
}

func TestArrayUnalignedIO(t *testing.T) {
	arr := newOIArray(t, 9)
	fillArray(t, arr, 2)
	patch := []byte("hello, unaligned world")
	off := int64(testStrip - 7) // crosses a strip boundary
	if _, err := arr.WriteAt(patch, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(patch))
	if _, err := arr.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, patch) {
		t.Fatalf("got %q, want %q", got, patch)
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub after unaligned write: bad=%d err=%v", bad, err)
	}
}

func TestArrayEOF(t *testing.T) {
	arr := newOIArray(t, 9)
	buf := make([]byte, 10)
	if _, err := arr.ReadAt(buf, arr.Capacity()); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
	if _, err := arr.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset must fail")
	}
	if _, err := arr.WriteAt(buf, arr.Capacity()-5); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("expected ErrShortWrite, got %v", err)
	}
}

// TestDegradedReadsUpToThreeFailures: OI-RAID content stays fully readable
// with 1, 2, and 3 failed disks.
func TestDegradedReadsUpToThreeFailures(t *testing.T) {
	arr := newOIArray(t, 9)
	want := fillArray(t, arr, 3)
	for _, d := range []int{0, 4, 8} {
		if err := arr.FailDisk(d); err != nil {
			t.Fatal(err)
		}
		if got := hashArray(t, arr); got != want {
			t.Fatalf("content changed after failing disk %d", d)
		}
	}
	stats := arr.Stats()
	if stats.DegradedReads == 0 {
		t.Fatal("expected degraded reads")
	}
}

// TestRebuildRestoresContent: kill three disks, rebuild onto fresh
// devices, verify hash and parity consistency.
func TestRebuildRestoresContent(t *testing.T) {
	arr := newOIArray(t, 9)
	want := fillArray(t, arr, 4)
	for _, d := range []int{1, 3, 5} {
		if err := arr.FailDisk(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := arr.Rebuild(); !errors.Is(err, ErrNoReplacement) {
		t.Fatalf("rebuild without replacements: %v", err)
	}
	for _, d := range []int{1, 3, 5} {
		dev, err := NewMemDevice(2*int64(arr.an.SlotsPerDisk()), testStrip)
		if err != nil {
			t.Fatal(err)
		}
		if err := arr.ReplaceDisk(d, dev); err != nil {
			t.Fatal(err)
		}
	}
	if err := arr.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if len(arr.FailedDisks()) != 0 {
		t.Fatal("failure flags not cleared")
	}
	if got := hashArray(t, arr); got != want {
		t.Fatal("content differs after rebuild")
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub after rebuild: bad=%d err=%v", bad, err)
	}
}

// TestWritesDuringDegradedMode: writes to strips on a failed disk update
// the live parities, and the rebuild reconstructs the *new* content.
func TestWritesDuringDegradedMode(t *testing.T) {
	arr := newOIArray(t, 9)
	fillArray(t, arr, 5)
	if err := arr.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	// Overwrite the whole data space while degraded.
	content := make([]byte, arr.Capacity())
	rng := rand.New(rand.NewSource(99))
	for i := range content {
		content[i] = byte(rng.Intn(256))
	}
	if _, err := arr.WriteAt(content, 0); err != nil {
		t.Fatal(err)
	}
	// Degraded reads must already see the new content.
	got := make([]byte, arr.Capacity())
	if _, err := arr.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("degraded read returned stale content")
	}
	// Rebuild and verify.
	dev, err := NewMemDevice(2*int64(arr.an.SlotsPerDisk()), testStrip)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.ReplaceDisk(2, dev); err != nil {
		t.Fatal(err)
	}
	if err := arr.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, err := arr.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("rebuilt content differs from degraded-mode writes")
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub: bad=%d err=%v", bad, err)
	}
}

// TestUpdateIOCounts pins the measured small-write cost: OI-RAID performs
// 4 reads + 4 writes per aligned strip write, RAID5 2+2, RAID6 3+3.
func TestUpdateIOCounts(t *testing.T) {
	cases := []struct {
		name       string
		an         *core.Analyzer
		wantRW     int64
		wantWrites int64
	}{
		{"oi-raid", oiAnalyzer(t, 9), 4, 4},
	}
	r5, err := layout.NewRAID5(5)
	cases = append(cases, struct {
		name       string
		an         *core.Analyzer
		wantRW     int64
		wantWrites int64
	}{"raid5", analyzerFor(t, r5, err), 2, 2})
	r6, err := layout.NewRAID6(6)
	cases = append(cases, struct {
		name       string
		an         *core.Analyzer
		wantRW     int64
		wantWrites int64
	}{"raid6", analyzerFor(t, r6, err), 3, 3})

	for _, tc := range cases {
		arr, err := NewMemArray(tc.an, 1, testStrip)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, testStrip)
		arr.ResetStats()
		if _, err := arr.WriteAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		st := arr.Stats()
		if st.ReadOps != tc.wantRW || st.WriteOps != tc.wantWrites {
			t.Errorf("%s: update cost %d reads / %d writes, want %d/%d",
				tc.name, st.ReadOps, st.WriteOps, tc.wantRW, tc.wantWrites)
		}
	}
}

// TestRAID6ArrayWithRS: the multi-parity delta path produces consistent
// parity (scrub-clean) and survives two failures.
func TestRAID6ArrayWithRS(t *testing.T) {
	r6, err := layout.NewRAID6(6)
	an := analyzerFor(t, r6, err)
	arr, err := NewMemArray(an, 2, testStrip)
	if err != nil {
		t.Fatal(err)
	}
	want := fillArray(t, arr, 6)
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub: bad=%d err=%v", bad, err)
	}
	for _, d := range []int{0, 3} {
		if err := arr.FailDisk(d); err != nil {
			t.Fatal(err)
		}
	}
	if got := hashArray(t, arr); got != want {
		t.Fatal("raid6 degraded read mismatch")
	}
	for _, d := range []int{0, 3} {
		dev, _ := NewMemDevice(2*int64(an.SlotsPerDisk()), testStrip)
		if err := arr.ReplaceDisk(d, dev); err != nil {
			t.Fatal(err)
		}
	}
	if err := arr.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := hashArray(t, arr); got != want {
		t.Fatal("raid6 rebuild mismatch")
	}
}

func TestDataLossReported(t *testing.T) {
	r5, err := layout.NewRAID5(5)
	an := analyzerFor(t, r5, err)
	arr, err := NewMemArray(an, 1, testStrip)
	if err != nil {
		t.Fatal(err)
	}
	fillArray(t, arr, 7)
	arr.FailDisk(0)
	arr.FailDisk(1)
	buf := make([]byte, testStrip)
	if _, err := arr.ReadAt(buf, 0); err == nil {
		t.Fatal("double failure on raid5 must surface data loss on read")
	}
	for _, d := range []int{0, 1} {
		dev, _ := NewMemDevice(int64(an.SlotsPerDisk()), testStrip)
		arr.ReplaceDisk(d, dev)
	}
	if err := arr.Rebuild(); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("expected ErrDataLoss, got %v", err)
	}
}

func TestNewArrayValidation(t *testing.T) {
	an := oiAnalyzer(t, 9)
	if _, err := NewArray(an, make([]Device, 3)); err == nil {
		t.Fatal("wrong device count must fail")
	}
	if _, err := NewMemArray(an, 0, testStrip); err == nil {
		t.Fatal("zero cycles must fail")
	}
	// Mismatched strip sizes.
	devs := make([]Device, an.Disks())
	for i := range devs {
		sb := testStrip
		if i == 2 {
			sb = testStrip * 2
		}
		dev, err := NewMemDevice(int64(an.SlotsPerDisk()), sb)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	if _, err := NewArray(an, devs); err == nil {
		t.Fatal("mismatched strip sizes must fail")
	}
}

func TestFileBackedArray(t *testing.T) {
	an := oiAnalyzer(t, 9)
	dir := t.TempDir()
	devs := make([]Device, an.Disks())
	for i := range devs {
		dev, err := NewFileDevice(filepath.Join(dir, "disk"+string(rune('a'+i))+".img"),
			int64(an.SlotsPerDisk()), testStrip)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = dev
	}
	arr, err := NewArray(an, devs)
	if err != nil {
		t.Fatal(err)
	}
	want := fillArray(t, arr, 8)
	if got := hashArray(t, arr); got != want {
		t.Fatal("file-backed round trip failed")
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub: bad=%d err=%v", bad, err)
	}
}

func BenchmarkArrayWrite(b *testing.B) {
	arr := newOIArray(b, 9)
	buf := make([]byte, testStrip)
	b.SetBytes(testStrip)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * testStrip) % arr.Capacity()
		if _, err := arr.WriteAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArrayDegradedRead(b *testing.B) {
	arr := newOIArray(b, 9)
	buf := make([]byte, testStrip)
	if _, err := arr.WriteAt(buf, 0); err != nil {
		b.Fatal(err)
	}
	arr.FailDisk(0)
	b.SetBytes(testStrip)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * testStrip) % arr.Capacity()
		if _, err := arr.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRepairFixesSilentParityCorruption: corrupt a parity strip directly
// on a device; Scrub detects it and Repair recomputes it, including the
// cascading inner-parity fix when the corrupted strip is an outer parity.
func TestRepairFixesSilentParityCorruption(t *testing.T) {
	an := oiAnalyzer(t, 9)
	arr, err := NewMemArray(an, 1, testStrip)
	if err != nil {
		t.Fatal(err)
	}
	want := fillArray(t, arr, 44)

	// Locate an outer parity strip: in a stripe with Layer outer, the
	// last member.
	var victim layout.Strip
	for _, s := range an.Scheme().Stripes() {
		if s.Layer == layout.LayerOuter {
			victim = s.Strips[len(s.Strips)-1]
			break
		}
	}
	// Corrupt it behind the array's back.
	raw := make([]byte, testStrip)
	dev := arr.devs[victim.Disk]
	if err := dev.ReadStrip(int64(victim.Slot), raw); err != nil {
		t.Fatal(err)
	}
	raw[7] ^= 0xFF
	if err := dev.WriteStrip(int64(victim.Slot), raw); err != nil {
		t.Fatal(err)
	}

	bad, err := arr.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if bad == 0 {
		t.Fatal("scrub missed the corruption")
	}
	repaired, err := arr.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("repair fixed nothing")
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub after repair: bad=%d err=%v", bad, err)
	}
	if got := hashArray(t, arr); got != want {
		t.Fatal("repair altered user data")
	}
	if _, err := arr.Repair(); err != nil {
		t.Fatal(err)
	}
	arr.FailDisk(0)
	if _, err := arr.Repair(); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("repair on degraded array: %v", err)
	}
}

// TestConcurrentReaders: reads (healthy and degraded) run concurrently;
// run with -race to catch synchronisation bugs.
func TestConcurrentReaders(t *testing.T) {
	arr := newOIArray(t, 9)
	want := make([]byte, arr.Capacity())
	rand.New(rand.NewSource(8)).Read(want)
	if _, err := arr.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	if err := arr.FailDisk(4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 300)
			for i := 0; i < 200; i++ {
				off := rng.Int63n(arr.Capacity() - 300)
				if _, err := arr.ReadAt(buf, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, want[off:off+300]) {
					errs <- errors.New("concurrent read mismatch")
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if arr.Stats().DegradedReads == 0 {
		t.Fatal("expected degraded reads in the mix")
	}
}

// TestIncrementalRebuildWithOnlineIO: RebuildStep interleaved with reads
// and writes stays coherent — writes landing in already-rebuilt cycles go
// to the replacement device, writes in not-yet-rebuilt cycles are
// reconstructed later, and the final array scrubs clean with the model's
// content.
func TestIncrementalRebuildWithOnlineIO(t *testing.T) {
	an := oiAnalyzer(t, 9)
	arr, err := NewMemArray(an, 8, testStrip) // 8 cycles → several steps
	if err != nil {
		t.Fatal(err)
	}
	model := make([]byte, arr.Capacity())
	rng := rand.New(rand.NewSource(77))
	rng.Read(model)
	if _, err := arr.WriteAt(model, 0); err != nil {
		t.Fatal(err)
	}
	if err := arr.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	dev, err := NewMemDevice(8*int64(an.SlotsPerDisk()), testStrip)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.ReplaceDisk(3, dev); err != nil {
		t.Fatal(err)
	}

	step := 0
	for {
		done, err := arr.RebuildStep(2)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, total := arr.RebuildProgress()
		if done {
			if rebuilt != 0 {
				t.Fatalf("progress after completion = %d", rebuilt)
			}
			break
		}
		if rebuilt <= 0 || rebuilt >= total {
			t.Fatalf("mid-rebuild progress %d/%d out of range", rebuilt, total)
		}
		// Interleave online I/O: overwrite a random range spanning both
		// rebuilt and pending cycles, and verify reads.
		n := 1 + rng.Intn(4000)
		off := rng.Int63n(arr.Capacity() - int64(n))
		buf := make([]byte, n)
		rng.Read(buf)
		if _, err := arr.WriteAt(buf, off); err != nil {
			t.Fatalf("step %d write: %v", step, err)
		}
		copy(model[off:], buf)
		got := make([]byte, n)
		if _, err := arr.ReadAt(got, off); err != nil {
			t.Fatalf("step %d read: %v", step, err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("step %d read-back mismatch", step)
		}
		step++
	}
	if step < 2 {
		t.Fatalf("only %d incremental steps; batch too large for the test", step)
	}
	// Full verification.
	got := make([]byte, arr.Capacity())
	if _, err := arr.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("content diverged after online rebuild")
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub: bad=%d err=%v", bad, err)
	}
}

// TestRebuildStepValidation: bad batches and a second failure mid-rebuild.
func TestRebuildStepValidation(t *testing.T) {
	an := oiAnalyzer(t, 9)
	arr, err := NewMemArray(an, 4, testStrip)
	if err != nil {
		t.Fatal(err)
	}
	want := fillArray(t, arr, 3)
	if _, err := arr.RebuildStep(0); err == nil {
		t.Fatal("batch 0 must fail")
	}
	if done, err := arr.RebuildStep(1); err != nil || !done {
		t.Fatalf("healthy array step = (%v, %v), want done", done, err)
	}
	arr.FailDisk(1)
	dev, _ := NewMemDevice(4*int64(an.SlotsPerDisk()), testStrip)
	arr.ReplaceDisk(1, dev)
	if done, err := arr.RebuildStep(1); err != nil || done {
		t.Fatalf("first step = (%v, %v), want in-progress", done, err)
	}
	// A second failure aborts the rebuild in flight.
	arr.FailDisk(5)
	if rebuilt, _ := arr.RebuildProgress(); rebuilt != 0 {
		t.Fatalf("progress after mid-rebuild failure = %d, want 0", rebuilt)
	}
	// Disk 1's replacement was kept; disk 5 needs one.
	dev5, _ := NewMemDevice(4*int64(an.SlotsPerDisk()), testStrip)
	if err := arr.ReplaceDisk(5, dev5); err != nil {
		t.Fatal(err)
	}
	if err := arr.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if got := hashArray(t, arr); got != want {
		t.Fatal("content differs after restarted rebuild")
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub: bad=%d err=%v", bad, err)
	}
}

// TestChecksummedDeviceBasics: checksums verify on read, detect silent
// corruption, and unknown strips pass through un-verified.
func TestChecksummedDeviceBasics(t *testing.T) {
	mem, err := NewMemDevice(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewChecksummedDevice(mem)
	if dev.Strips() != 4 || dev.StripBytes() != 64 {
		t.Fatal("geometry passthrough wrong")
	}
	p := bytes.Repeat([]byte{0x11}, 64)
	if err := dev.WriteStrip(2, p); err != nil {
		t.Fatal(err)
	}
	q := make([]byte, 64)
	if err := dev.ReadStrip(2, q); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, q) {
		t.Fatal("round trip failed")
	}
	// Silent corruption behind the wrapper's back.
	raw := make([]byte, 64)
	if err := dev.Inner().ReadStrip(2, raw); err != nil {
		t.Fatal(err)
	}
	raw[5] ^= 0x80
	if err := dev.Inner().WriteStrip(2, raw); err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadStrip(2, q); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
	// Never-written strip: no checksum, read passes.
	if err := dev.ReadStrip(0, q); err != nil {
		t.Fatalf("unverified strip read failed: %v", err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadRepairHealsLatentSectorError: corrupt a data strip behind a
// checksummed device; a foreground read detects it, reconstructs from
// parity, heals in place, and subsequent reads hit clean media.
func TestReadRepairHealsLatentSectorError(t *testing.T) {
	an := oiAnalyzer(t, 9)
	devs := make([]Device, an.Disks())
	for i := range devs {
		mem, err := NewMemDevice(int64(an.SlotsPerDisk()), testStrip)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = NewChecksummedDevice(mem)
	}
	arr, err := NewArray(an, devs)
	if err != nil {
		t.Fatal(err)
	}
	want := fillArray(t, arr, 66)

	// Corrupt the physical location of logical strip 0 silently.
	d, devStrip := arr.locate(0)
	cd := devs[d].(*ChecksummedDevice)
	raw := make([]byte, testStrip)
	if err := cd.Inner().ReadStrip(devStrip, raw); err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := cd.Inner().WriteStrip(devStrip, raw); err != nil {
		t.Fatal(err)
	}

	arr.ResetStats()
	if got := hashArray(t, arr); got != want {
		t.Fatal("content wrong despite read repair")
	}
	st := arr.Stats()
	if st.ReadRepairs != 1 {
		t.Fatalf("read repairs = %d, want 1", st.ReadRepairs)
	}
	// The strip is healed: a second full read performs no repairs.
	arr.ResetStats()
	if got := hashArray(t, arr); got != want {
		t.Fatal("content wrong after repair")
	}
	if st := arr.Stats(); st.ReadRepairs != 0 || st.DegradedReads != 0 {
		t.Fatalf("post-repair stats = %+v, want clean reads", st)
	}
	if bad, err := arr.Scrub(); err != nil || bad != 0 {
		t.Fatalf("scrub: bad=%d err=%v", bad, err)
	}
}

func TestReplaceDiskValidation(t *testing.T) {
	arr := newOIArray(t, 9)
	if err := arr.ReplaceDisk(0, nil); err == nil {
		t.Fatal("replacing a healthy disk must fail")
	}
	arr.FailDisk(0)
	small, _ := NewMemDevice(1, testStrip)
	if err := arr.ReplaceDisk(0, small); err == nil {
		t.Fatal("undersized replacement must fail")
	}
	wrongStrip, _ := NewMemDevice(2*int64(arr.an.SlotsPerDisk()), testStrip*2)
	if err := arr.ReplaceDisk(0, wrongStrip); err == nil {
		t.Fatal("wrong strip size must fail")
	}
	if err := arr.ReplaceDisk(99, small); err == nil {
		t.Fatal("unknown disk must fail")
	}
}
