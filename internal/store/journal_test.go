package store

import (
	"bytes"
	"errors"
	"testing"
)

func openTestJournal(t *testing.T, b0, b1 Blob, disks int) *MetaJournal {
	t.Helper()
	j, err := OpenMetaJournal(b0, b1, disks)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJournalReplaysState(t *testing.T) {
	b0, b1 := NewMemBlob(), NewMemBlob()
	j := openTestJournal(t, b0, b1, 4)
	if err := j.RecordSum(2, 7, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordClosure(1, []StripUpdate{
		{Disk: 0, Slot: 3, Data: []byte("abcd")},
		{Disk: 3, Slot: 5, Data: []byte("wxyz")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordTransition(TransEvict, 1, 9); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same blobs: all three record kinds replay.
	j2 := openTestJournal(t, b0, b1, 4)
	if got := j2.Sums(2)[7]; got != 0xdeadbeef {
		t.Fatalf("sum %#x, want 0xdeadbeef", got)
	}
	pcs, err := j2.PendingClosures()
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 1 || pcs[0].Cycle != 1 || len(pcs[0].Strips) != 2 {
		t.Fatalf("pending closures %+v", pcs)
	}
	if pcs[0].Strips[1].Disk != 3 || !bytes.Equal(pcs[0].Strips[1].Data, []byte("wxyz")) {
		t.Fatalf("closure strip %+v", pcs[0].Strips[1])
	}
	trs := j2.Transitions()
	if len(trs) != 1 || trs[0].Kind != TransEvict || trs[0].Disk != 1 || trs[0].Generation != 9 {
		t.Fatalf("transitions %+v", trs)
	}

	// Clearing the closure empties Pending after another reopen.
	if err := j2.ClearClosure(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := j2.Sync(); err != nil { // clears are lazily durable
		t.Fatal(err)
	}
	j3 := openTestJournal(t, b0, b1, 4)
	if p, _ := j3.Pending(); len(p) != 0 {
		t.Fatalf("pending after clear: %v", p)
	}
}

// TestJournalScopedClear pins the strip-set clear semantics: clearing with
// a strip set drops only records whose strip locations match exactly —
// the acked write's own record and stacked records of its failed earlier
// attempts — while records of other writes on the same cycle survive both
// in memory and across a reopen (the clear frame carries the set).
func TestJournalScopedClear(t *testing.T) {
	b0, b1 := NewMemBlob(), NewMemBlob()
	j := openTestJournal(t, b0, b1, 4)
	own := []StripUpdate{
		{Disk: 0, Slot: 1, Data: []byte("a1")},
		{Disk: 2, Slot: 3, Data: []byte("p1")},
	}
	ownRetry := []StripUpdate{ // same closure, newer content
		{Disk: 2, Slot: 3, Data: []byte("p2")},
		{Disk: 0, Slot: 1, Data: []byte("a2")},
	}
	foreign := []StripUpdate{
		{Disk: 1, Slot: 1, Data: []byte("b1")},
		{Disk: 2, Slot: 3, Data: []byte("q1")},
	}
	for _, strips := range [][]StripUpdate{own, ownRetry, foreign} {
		if err := j.RecordClosure(7, strips); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.ClearClosure(7, own); err != nil {
		t.Fatal(err)
	}
	pcs, err := j.PendingClosures()
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 1 || !bytes.Equal(pcs[0].Strips[0].Data, []byte("b1")) {
		t.Fatalf("after scoped clear: %+v", pcs)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, b0, b1, 4)
	pcs, err = j2.PendingClosures()
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 1 || !bytes.Equal(pcs[0].Strips[0].Data, []byte("b1")) {
		t.Fatalf("after reopen: %+v", pcs)
	}
	// A nil set keeps the legacy cycle-wide semantics.
	if err := j2.ClearClosure(7, nil); err != nil {
		t.Fatal(err)
	}
	if p, _ := j2.Pending(); len(p) != 0 {
		t.Fatalf("pending after cycle-wide clear: %v", p)
	}
}

// TestJournalUnsyncedClearReplays pins the lazy-durability rule: a clear
// that never reached the media leaves the closure pending, and replaying
// it is the designed (idempotent) behaviour.
func TestJournalUnsyncedClearReplays(t *testing.T) {
	ctl := NewCrashController(1)
	cb0, cb1 := NewCrashBlob(ctl), NewCrashBlob(ctl)
	j := openTestJournal(t, cb0, cb1, 2)
	if err := j.RecordClosure(0, []StripUpdate{{Disk: 0, Slot: 0, Data: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := j.ClearClosure(0, nil); err != nil { // appended, not synced
		t.Fatal(err)
	}
	j2 := openTestJournal(t, cb0.Survivor(), cb1.Survivor(), 2)
	if p, _ := j2.Pending(); len(p) != 1 || p[0] != 0 {
		t.Fatalf("pending %v, want the uncleared closure", p)
	}
}

func TestJournalTornTail(t *testing.T) {
	b0, b1 := NewMemBlob(), NewMemBlob()
	j := openTestJournal(t, b0, b1, 2)
	if err := j.RecordSum(0, 1, 42); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: garbage where the next frame would start.
	size, _ := b0.Size()
	if _, err := b0.WriteAt([]byte{0xff, 0x03, 0x02}, size); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, b0, b1, 2)
	if got := j2.Sums(0)[1]; got != 42 {
		t.Fatalf("sum lost across torn tail: %d", got)
	}
	// The next append lands over the torn bytes and replays cleanly.
	if err := j2.RecordSum(1, 2, 43); err != nil {
		t.Fatal(err)
	}
	j3 := openTestJournal(t, b0, b1, 2)
	if got := j3.Sums(1)[2]; got != 43 {
		t.Fatalf("sum appended after tear lost: %d", got)
	}
}

func TestJournalCorruptHeaderRefuses(t *testing.T) {
	b0, b1 := NewMemBlob(), NewMemBlob()
	j := openTestJournal(t, b0, b1, 2)
	if err := j.RecordSum(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b0.WriteAt([]byte{0xff}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMetaJournal(b0, b1, 2); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("err %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalCompaction(t *testing.T) {
	b0, b1 := NewMemBlob(), NewMemBlob()
	j := openTestJournal(t, b0, b1, 2)
	j.SetCompactThreshold(64)
	for i := int64(0); i < 20; i++ {
		if err := j.RecordSum(int(i%2), i, uint32(i)); err != nil {
			t.Fatal(err)
		}
		if err := j.RecordClosure(i, nil); err != nil {
			t.Fatal(err)
		}
		if err := j.ClearClosure(i, nil); err != nil {
			t.Fatal(err)
		}
	}
	if j.Epoch() < 2 {
		t.Fatalf("epoch %d: compaction never switched regions", j.Epoch())
	}
	j2 := openTestJournal(t, b0, b1, 2)
	for i := int64(0); i < 20; i++ {
		if got := j2.Sums(int(i % 2))[i]; got != uint32(i) {
			t.Fatalf("sum %d lost across compaction: %d", i, got)
		}
	}
	if p, _ := j2.Pending(); len(p) != 0 {
		t.Fatalf("pending after compaction: %v", p)
	}
}

// TestJournalCompactionCrashKeepsOldRegion pins the header-last protocol:
// a power cut during compaction must leave the previous region
// authoritative, never a half-written snapshot.
func TestJournalCompactionCrashKeepsOldRegion(t *testing.T) {
	for cut := int64(0); cut < 8; cut++ {
		ctl := NewCrashController(cut)
		cb0, cb1 := NewCrashBlob(ctl), NewCrashBlob(ctl)
		j := openTestJournal(t, cb0, cb1, 2)
		j.SetCompactThreshold(1)
		for i := int64(0); i < 4; i++ {
			if err := j.RecordSum(0, i, uint32(i)+100); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Sync(); err != nil {
			t.Fatal(err)
		}
		ctl.Arm(cut)
		// Trigger compaction; with the controller armed it may die at any
		// point of the snapshot-then-header sequence.
		err := j.RecordClosure(9, nil)
		if err == nil {
			err = j.ClearClosure(9, nil)
		}
		crashed := ctl.Crashed()
		j2, jerr := OpenMetaJournal(cb0.Survivor(), cb1.Survivor(), 2)
		if jerr != nil {
			t.Fatalf("cut %d (crashed=%v, err=%v): reopen failed: %v", cut, crashed, err, jerr)
		}
		for i := int64(0); i < 4; i++ {
			if got := j2.Sums(0)[i]; got != uint32(i)+100 {
				t.Fatalf("cut %d: sum %d lost in compaction crash: %d", cut, i, got)
			}
		}
	}
}
