package store

import "fmt"

// DegradedPolicy decides what MountArray does when the committed failure
// pattern is beyond the layout's tolerance. It is format-time state,
// persisted in the superblock (one byte, zero-valued in pre-degradation
// images so old arrays keep the historic refuse behaviour), and can be
// overridden per mount.
type DegradedPolicy uint8

const (
	// DegradedRefuse is the historic behaviour: a beyond-tolerance
	// pattern fails the mount with ErrTooManyFailures.
	DegradedRefuse DegradedPolicy = iota
	// DegradedReadOnly mounts beyond tolerance only when every data
	// strip is still decodable (losses confined to parity) and serves
	// the full address space read-only; otherwise the mount refuses.
	DegradedReadOnly
	// DegradedPartial mounts any pattern read-only and serves the
	// decodable subset; reads of undecodable strips return
	// ErrStripUnavailable.
	DegradedPartial
)

// String renders the policy the way flags and manifests spell it.
func (p DegradedPolicy) String() string {
	switch p {
	case DegradedRefuse:
		return "refuse"
	case DegradedReadOnly:
		return "read-only"
	case DegradedPartial:
		return "partial"
	default:
		return fmt.Sprintf("degraded-policy(%d)", uint8(p))
	}
}

// ParseDegradedPolicy parses the flag/manifest spelling of a policy.
func ParseDegradedPolicy(s string) (DegradedPolicy, error) {
	switch s {
	case "", "refuse":
		return DegradedRefuse, nil
	case "read-only", "readonly", "ro":
		return DegradedReadOnly, nil
	case "partial", "partial-read":
		return DegradedPartial, nil
	default:
		return DegradedRefuse, fmt.Errorf("store: unknown degraded policy %q (want refuse|read-only|partial)", s)
	}
}
