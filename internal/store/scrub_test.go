package store

import (
	"errors"
	"testing"
)

// TestScrubStepIncremental: slicing a scrub pass cycle-by-cycle finds the
// same inconsistencies as the one-shot Scrub, the cursor advances and
// wraps, and the pass total matches.
func TestScrubStepIncremental(t *testing.T) {
	an := oiAnalyzer(t, 9)
	arr, err := NewMemArray(an, 4, testStrip)
	if err != nil {
		t.Fatal(err)
	}
	fillArray(t, arr, 77)

	// Plant silent corruption: clobber one data strip of each of two
	// cycles directly on the device, bypassing parity maintenance.
	slots := int64(an.SlotsPerDisk())
	garbage := make([]byte, testStrip)
	for i := range garbage {
		garbage[i] = 0xA5
	}
	for _, cycle := range []int64{0, 2} {
		if err := arr.devs[0].WriteStrip(cycle*slots, garbage); err != nil {
			t.Fatal(err)
		}
	}
	wantBad, err := arr.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if wantBad == 0 {
		t.Fatal("planted corruption not detected by Scrub")
	}

	var gotBad int
	steps := 0
	for {
		done, bad, err := arr.ScrubStep(1)
		if err != nil {
			t.Fatal(err)
		}
		gotBad += bad
		steps++
		scanned, total := arr.ScrubProgress()
		if done {
			if scanned != 0 {
				t.Fatalf("cursor after completed pass = %d, want 0", scanned)
			}
			break
		}
		if scanned != int64(steps) || total != 4 {
			t.Fatalf("progress after step %d = %d/%d", steps, scanned, total)
		}
	}
	if steps != 4 {
		t.Fatalf("pass took %d steps, want 4", steps)
	}
	if gotBad != wantBad {
		t.Fatalf("incremental pass found %d bad stripes, Scrub found %d", gotBad, wantBad)
	}

	// A batch larger than the remaining cycles completes the pass in one
	// step.
	if done, bad, err := arr.ScrubStep(1 << 20); err != nil || !done || bad != wantBad {
		t.Fatalf("whole-pass step = done %v, %d bad, %v", done, bad, err)
	}
}

// TestScrubStepValidation: bad batch sizes and degraded arrays are
// refused, and a failed disk leaves the cursor untouched so the pass
// resumes after rebuild.
func TestScrubStepValidation(t *testing.T) {
	arr := newOIArray(t, 9)
	fillArray(t, arr, 5)
	if _, _, err := arr.ScrubStep(0); err == nil {
		t.Fatal("batch 0 must fail")
	}
	if done, _, err := arr.ScrubStep(1); err != nil || done {
		t.Fatalf("first slice = done %v, %v", done, err)
	}
	if err := arr.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := arr.ScrubStep(1); !errors.Is(err, ErrDiskFaulty) {
		t.Fatalf("degraded scrub slice: want ErrDiskFaulty, got %v", err)
	}
	if scanned, _ := arr.ScrubProgress(); scanned != 1 {
		t.Fatalf("cursor moved on refused slice: %d", scanned)
	}
	dev, err := NewMemDevice(arr.devs[3].Strips(), testStrip)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.ReplaceDisk(3, dev); err != nil {
		t.Fatal(err)
	}
	if err := arr.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if done, bad, err := arr.ScrubStep(1 << 20); err != nil || !done || bad != 0 {
		t.Fatalf("resumed pass = done %v, %d bad, %v", done, bad, err)
	}
}
