package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// crashRig is a full durable array on crash-faulted media: every device
// write, journal flush, and superblock commit is one admitted operation
// on a shared CrashController, so a sweep can cut power at every one of
// them in turn. Replacement disks registered before ReplaceDisk model a
// physical swap: after the crash, the slot's survivor is the new medium
// whether or not the adoption commit made it to the superblocks.
type crashRig struct {
	t      *testing.T
	an     int // array size v
	cycles int64
	ctl    *CrashController
	devs   []*CrashDevice
	sbs    []*CrashBlob
	j0, j1 *CrashBlob
	repl   map[int]*CrashDevice
	phase  string
	// inflight is the write cut mid-commit, if any. Its redo record may
	// or may not have reached the journal, so after recovery the strip
	// legitimately holds either the old or the new content (atomically —
	// anything else is a bug the verifier catches).
	inflightOff  int64
	inflightData []byte
}

func newCrashRig(t *testing.T, seed int64) *crashRig {
	t.Helper()
	r := &crashRig{
		t:      t,
		an:     9,
		cycles: 2,
		ctl:    NewCrashController(seed),
		repl:   map[int]*CrashDevice{},
		phase:  "format",
	}
	an := oiAnalyzer(t, r.an)
	strips := r.cycles * int64(an.SlotsPerDisk())
	for i := 0; i < an.Disks(); i++ {
		dev, err := NewCrashDevice(r.ctl, strips, testStrip)
		if err != nil {
			t.Fatal(err)
		}
		r.devs = append(r.devs, dev)
		r.sbs = append(r.sbs, NewCrashBlob(r.ctl))
	}
	r.j0, r.j1 = NewCrashBlob(r.ctl), NewCrashBlob(r.ctl)
	return r
}

func (r *crashRig) format() *Mount {
	r.t.Helper()
	devs := make([]Device, len(r.devs))
	for i, d := range r.devs {
		devs[i] = d
	}
	sbs := make([]Blob, len(r.sbs))
	for i, b := range r.sbs {
		sbs[i] = b
	}
	m, err := FormatArray(oiAnalyzer(r.t, r.an), devs, sbs, r.j0, r.j1)
	if err != nil {
		r.t.Fatal(err)
	}
	return m
}

// workload drives a deterministic write/evict/adopt/rebuild sequence,
// recording every acknowledged strip write in oracle. It returns on the
// first error — the simulated power failure when the controller is armed.
func (r *crashRig) workload(m *Mount, oracle map[int64][]byte) error {
	rng := rand.New(rand.NewSource(424242))
	capStrips := m.Array.Capacity() / int64(testStrip)
	write := func() error {
		off := rng.Int63n(capStrips) * int64(testStrip)
		buf := make([]byte, testStrip)
		rng.Read(buf)
		if _, err := m.Array.WriteAt(buf, off); err != nil {
			r.inflightOff, r.inflightData = off, buf
			return err
		}
		oracle[off] = buf
		return nil
	}

	r.phase = "fill"
	for i := 0; i < 30; i++ {
		if err := write(); err != nil {
			return err
		}
	}
	r.phase = "evict"
	if err := m.Array.FailDisk(1); err != nil {
		return err
	}
	r.phase = "degraded"
	for i := 0; i < 10; i++ {
		if err := write(); err != nil {
			return err
		}
	}
	r.phase = "adopt"
	repl, err := NewCrashDevice(r.ctl, r.devs[1].Strips(), testStrip)
	if err != nil {
		return err
	}
	r.repl[1] = repl // physically in the slot from here on
	if err := m.Array.ReplaceDisk(1, repl); err != nil {
		return err
	}
	r.phase = "rebuild"
	if err := m.Array.Rebuild(); err != nil {
		return err
	}
	r.phase = "final"
	for i := 0; i < 10; i++ {
		if err := write(); err != nil {
			return err
		}
	}
	r.phase = "seal"
	return m.Array.SealMeta()
}

// recover builds the survivors — the durable state of whatever medium is
// physically in each slot — remounts, swaps fresh disks into any slots
// the mount failed, rebuilds, and returns the recovered array.
func (r *crashRig) recover() (*Mount, error) {
	r.t.Helper()
	devs := make([]Device, len(r.devs))
	for i, d := range r.devs {
		src := d
		if rep, ok := r.repl[i]; ok {
			src = rep
		}
		m, err := src.Survivor()
		if err != nil {
			r.t.Fatal(err)
		}
		devs[i] = m
	}
	sbs := make([]Blob, len(r.sbs))
	for i, b := range r.sbs {
		sbs[i] = b.Survivor()
	}
	mnt, err := MountArray(oiAnalyzer(r.t, r.an), devs, sbs, r.j0.Survivor(), r.j1.Survivor())
	if err != nil {
		return nil, err
	}
	for _, d := range mnt.Failed {
		fresh, err := NewMemDevice(devs[d].Strips(), testStrip)
		if err != nil {
			r.t.Fatal(err)
		}
		if err := mnt.Array.ReplaceDisk(d, fresh); err != nil {
			return nil, fmt.Errorf("replace disk %d: %w", d, err)
		}
	}
	if len(mnt.Failed) > 0 {
		if err := mnt.Array.Rebuild(); err != nil {
			return nil, fmt.Errorf("rebuild: %w", err)
		}
	}
	return mnt, nil
}

// verify checks every acknowledged write bit-identical against the
// oracle, then runs a full fsck.
func (r *crashRig) verify(mnt *Mount, oracle map[int64][]byte) error {
	buf := make([]byte, testStrip)
	for off, want := range oracle {
		if _, err := mnt.Array.ReadAt(buf, off); err != nil {
			return fmt.Errorf("read acked strip at %d: %w", off, err)
		}
		if bytes.Equal(buf, want) {
			continue
		}
		// The write cut mid-commit was never acknowledged; recovery may
		// legitimately apply it in full (its redo record was durable).
		if off == r.inflightOff && bytes.Equal(buf, r.inflightData) {
			continue
		}
		return fmt.Errorf("acked write at %d lost or mangled", off)
	}
	rep, err := mnt.Array.Fsck(false)
	if err != nil {
		return fmt.Errorf("fsck: %w", err)
	}
	if !rep.Clean {
		return fmt.Errorf("fsck dirty after recovery: %+v", rep)
	}
	return nil
}

// TestCrashRecoveryNoCrash sanity-checks the rig itself: a workload that
// never loses power remounts clean with every write intact.
func TestCrashRecoveryNoCrash(t *testing.T) {
	r := newCrashRig(t, 1)
	m := r.format()
	oracle := map[int64][]byte{}
	if err := r.workload(m, oracle); err != nil {
		t.Fatalf("disarmed workload failed in %s: %v", r.phase, err)
	}
	mnt, err := r.recover()
	if err != nil {
		t.Fatal(err)
	}
	if !mnt.WasClean {
		t.Error("sealed array remounted as not clean")
	}
	if err := r.verify(mnt, oracle); err != nil {
		t.Fatal(err)
	}
}

// TestCrashSweep is the power-fail chaos suite: it cuts power at every
// k-th persisting operation of the workload — device strip writes,
// journal appends and flushes, superblock commits, from the first fill
// write through eviction, adoption, rebuild, and seal — then remounts
// from the survivors and proves no acknowledged write was lost and the
// array is fsck-clean.
func TestCrashSweep(t *testing.T) {
	// Disarmed dry run sizes the sweep.
	dry := newCrashRig(t, 0)
	mDry := dry.format()
	afterFormat := dry.ctl.Writes()
	if err := dry.workload(mDry, map[int64][]byte{}); err != nil {
		t.Fatalf("dry run failed in %s: %v", dry.phase, err)
	}
	span := dry.ctl.Writes() - afterFormat
	points := int64(220)
	if testing.Short() {
		points = 40
	}
	stride := span / points
	if stride < 1 {
		stride = 1
	}

	ran := 0
	phases := map[string]int{}
	for cut := int64(0); cut < span; cut += stride {
		cut := cut
		name := fmt.Sprintf("cut=%d", cut)
		t.Run(name, func(t *testing.T) {
			r := newCrashRig(t, cut) // seed the tear geometry per point
			m := r.format()
			oracle := map[int64][]byte{}
			r.ctl.Arm(cut)
			err := r.workload(m, oracle)
			if err == nil {
				t.Fatalf("cut %d inside span %d did not crash", cut, span)
			}
			if !r.ctl.Crashed() {
				t.Fatalf("workload error without crash in %s: %v", r.phase, err)
			}
			phases[r.phase]++
			mnt, err := r.recover()
			if err != nil {
				t.Fatalf("crash in %s: recovery failed: %v", r.phase, err)
			}
			if err := r.verify(mnt, oracle); err != nil {
				t.Fatalf("crash in %s: %v", r.phase, err)
			}
		})
		ran++
	}
	t.Logf("swept %d crash points over %d operations; crash phases: %v", ran, span, phases)
	if !testing.Short() {
		if ran < 200 {
			t.Errorf("only %d crash points, want >= 200", ran)
		}
	}
	if len(phases) < 4 {
		t.Errorf("crash points hit %d phases (%v), want >= 4", len(phases), phases)
	}
}

// TestCrashIntentLogDurability pins the FileIntentLog contract over the
// power-fail blob: Record and Clear are durable before they return.
func TestCrashIntentLogDurability(t *testing.T) {
	ctl := NewCrashController(3)
	b := NewCrashBlob(ctl)
	il, err := NewBlobIntentLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := il.Record(7); err != nil {
		t.Fatal(err)
	}
	// Power off with no further operations: the record must be on media.
	ctl.Arm(0)
	il2, err := NewBlobIntentLog(b.Survivor())
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := il2.Pending(); len(p) != 1 || p[0] != 7 {
		t.Fatalf("pending %v after crash, want [7]", p)
	}
	ctl.Arm(-1)
	if err := il.Clear(7); err != nil {
		t.Fatal(err)
	}
	ctl.Arm(0)
	il3, err := NewBlobIntentLog(b.Survivor())
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := il3.Pending(); len(p) != 0 {
		t.Fatalf("pending %v after cleared crash, want none", p)
	}
}
