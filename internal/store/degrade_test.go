package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// lossyPattern is a beyond-tolerance 4-failure pattern on the v=9
// layout with undecodable data strips (see the quad-pattern census in
// core: 54 of the 126 4-failure patterns are lossy; this is one).
var lossyPattern = []int{0, 1, 3, 4}

// degradeRig formats a v=9 array, writes a distinct pattern into every
// data strip, seals, and then wipes the superblocks of the failed set —
// the powered-off shape of a beyond-tolerance failure.
func degradeRig(t *testing.T, failed []int) (*mountRig, [][]byte) {
	t.Helper()
	r := newMountRig(t, 9, 2)
	m := r.format(t)
	strips := m.Array.Capacity() / int64(m.Array.StripBytes())
	want := make([][]byte, strips)
	for s := int64(0); s < strips; s++ {
		p := make([]byte, testStrip)
		for i := range p {
			p[i] = byte(int64(i)*7 + s + 1)
		}
		if _, err := m.Array.WriteAt(p, s*int64(testStrip)); err != nil {
			t.Fatalf("seed write %d: %v", s, err)
		}
		want[s] = p
	}
	if err := m.Array.SealMeta(); err != nil {
		t.Fatal(err)
	}
	for _, d := range failed {
		if err := r.sbs[d].Truncate(0); err != nil {
			t.Fatal(err)
		}
	}
	return r, want
}

// TestMountRefuseNamesPattern: the default policy still refuses a
// beyond-tolerance mount, and the error names the failed disks, the
// violating inner groups, and the policy that refused.
func TestMountRefuseNamesPattern(t *testing.T) {
	r, _ := degradeRig(t, lossyPattern)
	_, err := MountArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1)
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err %v, want ErrTooManyFailures", err)
	}
	for _, frag := range []string{"[0 1 3 4]", "violating inner groups", `"refuse"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("refusal %q does not mention %q", err, frag)
		}
	}
}

// TestMountReadOnlyPolicyNeedsDataComplete: the read-only policy only
// serves when every data strip is decodable. No failure pattern of the
// v=9 layout loses parity alone (data and parity interleave in every
// inner group), so a lossy pattern must refuse — and point the operator
// at the partial policy that would serve the readable subset.
func TestMountReadOnlyPolicyNeedsDataComplete(t *testing.T) {
	r, _ := degradeRig(t, lossyPattern)
	_, err := MountArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1,
		WithMountDegradedPolicy(DegradedReadOnly))
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err %v, want ErrTooManyFailures", err)
	}
	if !strings.Contains(err.Error(), `"partial"`) {
		t.Fatalf("read-only refusal %q does not point at the partial policy", err)
	}
}

// TestMountPartialServesDecodableSubset is the per-strip oracle: under
// the partial policy a lossy mount comes up write-fenced, every
// decodable data strip reads back bit-exact, and every undecodable one
// returns ErrStripUnavailable — never stale or zero data.
func TestMountPartialServesDecodableSubset(t *testing.T) {
	r, want := degradeRig(t, lossyPattern)
	m, err := MountArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1,
		WithMountDegradedPolicy(DegradedPartial))
	if err != nil {
		t.Fatalf("partial mount: %v", err)
	}
	if !m.ReadOnly || !m.Array.ReadOnly() {
		t.Fatal("partial mount did not fence the write path")
	}
	if m.Availability == nil || m.Availability.Recoverable {
		t.Fatalf("partial mount availability: %+v", m.Availability)
	}

	served, refused := 0, 0
	buf := make([]byte, testStrip)
	for s := int64(0); s < int64(len(want)); s++ {
		st, _ := m.Array.LocateDataStrip(s)
		_, err := m.Array.ReadAt(buf, s*int64(testStrip))
		if m.Availability.StripAvailable(st) {
			if err != nil {
				t.Fatalf("decodable strip %d (%v): %v", s, st, err)
			}
			if !bytes.Equal(buf, want[s]) {
				t.Fatalf("decodable strip %d (%v) differs from oracle", s, st)
			}
			served++
		} else {
			if !errors.Is(err, ErrStripUnavailable) {
				t.Fatalf("undecodable strip %d (%v): err %v, want ErrStripUnavailable", s, st, err)
			}
			// The per-strip sentinel still wraps the coarse one.
			if !errors.Is(err, ErrTooManyFailures) {
				t.Fatalf("ErrStripUnavailable does not wrap ErrTooManyFailures: %v", err)
			}
			refused++
		}
	}
	if served == 0 || refused == 0 {
		t.Fatalf("partial mount served %d and refused %d strips; want both non-zero", served, refused)
	}

	// Writes are fenced with the retryable read-only sentinel.
	if _, err := m.Array.WriteAt(want[0], 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on partial mount: %v, want ErrReadOnly", err)
	}
}

// TestMountDegradedPolicyPersists: a policy chosen at format time rides
// the superblock, so a later beyond-tolerance mount serves partial
// without any per-mount override.
func TestMountDegradedPolicyPersists(t *testing.T) {
	r := newMountRig(t, 9, 2)
	m, err := FormatArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1,
		WithDegradedPolicy(DegradedPartial))
	if err != nil {
		t.Fatal(err)
	}
	fillArray(t, m.Array, 21)
	if err := m.Array.SealMeta(); err != nil {
		t.Fatal(err)
	}
	if m.Super.Degraded != DegradedPartial {
		t.Fatalf("format did not persist the policy: %v", m.Super.Degraded)
	}
	for _, d := range lossyPattern {
		if err := r.sbs[d].Truncate(0); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := MountArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1)
	if err != nil {
		t.Fatalf("mount with persisted partial policy: %v", err)
	}
	if !m2.ReadOnly {
		t.Fatal("persisted partial policy did not fence the mount")
	}
	// And the per-mount override can tighten it back to refuse.
	if _, err := MountArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1,
		WithMountDegradedPolicy(DegradedRefuse)); !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("refuse override: %v, want ErrTooManyFailures", err)
	}
}

// TestDegradedPolicyRoundTrip pins the flag/manifest spellings.
func TestDegradedPolicyRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want DegradedPolicy
	}{
		{"", DegradedRefuse},
		{"refuse", DegradedRefuse},
		{"read-only", DegradedReadOnly},
		{"readonly", DegradedReadOnly},
		{"ro", DegradedReadOnly},
		{"partial", DegradedPartial},
		{"partial-read", DegradedPartial},
	}
	for _, tc := range cases {
		got, err := ParseDegradedPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseDegradedPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseDegradedPolicy("yolo"); err == nil {
		t.Fatal("unknown policy spelling accepted")
	}
	for _, p := range []DegradedPolicy{DegradedRefuse, DegradedReadOnly, DegradedPartial} {
		back, err := ParseDegradedPolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("policy %v does not round-trip its String %q", p, p.String())
		}
	}
}
