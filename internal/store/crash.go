package store

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// ErrCrashed reports an operation issued at or after a simulated power
// failure: the CrashController has cut persistence and every further
// device or blob operation fails until the harness builds survivors and
// remounts.
var ErrCrashed = errors.New("store: simulated power failure")

// CrashController coordinates a simulated power failure across every
// CrashDevice and CrashBlob of an array: after Arm(n), exactly n further
// persisting operations complete in full; the next one is torn at a
// seeded byte boundary and everything after it fails with ErrCrashed.
// Counting operations globally lets a test sweep the cut point across an
// entire workload — every device write, journal append flush, and
// superblock commit is a distinct crash point.
type CrashController struct {
	mu      sync.Mutex
	rng     *rand.Rand
	armed   bool
	left    int64 // fully persisting operations remaining before the cut
	writes  int64 // total persisting operations admitted (for sweep sizing)
	crashed bool
}

// NewCrashController returns a disarmed controller (all operations
// persist) with the given tear seed.
func NewCrashController(seed int64) *CrashController {
	return &CrashController{rng: rand.New(rand.NewSource(seed))}
}

// Arm schedules the power failure: n more persisting operations complete,
// then the next is torn. Arm(-1) disarms. Arming resets a previous crash.
func (c *CrashController) Arm(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = n >= 0
	c.left = n
	c.crashed = false
}

// Crashed reports whether the cut has happened.
func (c *CrashController) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Writes returns the number of persisting operations admitted so far; a
// disarmed dry run of a workload uses it to size the crash-point sweep.
func (c *CrashController) Writes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// admit gates one persisting operation carrying n bytes. Before the cut
// it persists fully (persist == n, err == nil). The operation at the cut
// is torn: a seeded prefix of 0..n bytes persists and ErrCrashed is
// returned. After the cut nothing persists.
func (c *CrashController) admit(n int) (persist int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	c.writes++
	if c.armed {
		if c.left <= 0 {
			c.crashed = true
			if n > 0 {
				persist = c.rng.Intn(n + 1)
			}
			return persist, ErrCrashed
		}
		c.left--
	}
	return n, nil
}

// CrashDevice is an in-memory strip Device with power-fail semantics: it
// models a disk whose write cache is disabled, so every completed
// WriteStrip is durable, the write at the cut point persists only a torn
// prefix, and everything after the cut fails with ErrCrashed. Survivor
// re-materialises the durable state for remounting.
type CrashDevice struct {
	ctl        *CrashController
	mu         sync.Mutex
	data       []byte
	stripBytes int
}

var _ Device = (*CrashDevice)(nil)

// NewCrashDevice allocates a crash-faulted device of strips × stripBytes
// attached to ctl.
func NewCrashDevice(ctl *CrashController, strips int64, stripBytes int) (*CrashDevice, error) {
	if strips <= 0 || stripBytes <= 0 {
		return nil, fmt.Errorf("%w: %d×%d", ErrBadGeometry, strips, stripBytes)
	}
	return &CrashDevice{
		ctl:        ctl,
		data:       make([]byte, strips*int64(stripBytes)),
		stripBytes: stripBytes,
	}, nil
}

// Strips implements Device.
func (d *CrashDevice) Strips() int64 { return int64(len(d.data) / d.stripBytes) }

// StripBytes implements Device.
func (d *CrashDevice) StripBytes() int { return d.stripBytes }

func (d *CrashDevice) check(idx int64, p []byte) error {
	if idx < 0 || idx >= d.Strips() {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, idx, d.Strips())
	}
	if len(p) != d.stripBytes {
		return fmt.Errorf("%w: buffer %d bytes, strip is %d", ErrShortBuffer, len(p), d.stripBytes)
	}
	return nil
}

// ReadStrip implements Device.
func (d *CrashDevice) ReadStrip(idx int64, p []byte) error {
	if err := d.check(idx, p); err != nil {
		return err
	}
	if d.ctl.Crashed() {
		return ErrCrashed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(p, d.data[idx*int64(d.stripBytes):])
	return nil
}

// WriteStrip implements Device.
func (d *CrashDevice) WriteStrip(idx int64, p []byte) error {
	if err := d.check(idx, p); err != nil {
		return err
	}
	persist, err := d.ctl.admit(len(p))
	if persist > 0 {
		d.mu.Lock()
		copy(d.data[idx*int64(d.stripBytes):idx*int64(d.stripBytes)+int64(persist)], p[:persist])
		d.mu.Unlock()
	}
	return err
}

// Close implements Device.
func (d *CrashDevice) Close() error { return nil }

// Survivor returns a fresh MemDevice holding exactly the durable state —
// what a remount after the power failure would find on the platter.
func (d *CrashDevice) Survivor() (*MemDevice, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, err := NewMemDevice(d.Strips(), d.stripBytes)
	if err != nil {
		return nil, err
	}
	copy(m.data, d.data)
	return m, nil
}

// crashOp is one volatile mutation queued in a CrashBlob between Sync
// calls; truncations queue alongside writes so they replay in order.
type crashOp struct {
	off      int64
	data     []byte
	size     int64
	truncate bool
}

// CrashBlob is a Blob with page-cache power-fail semantics: WriteAt and
// Truncate mutate only a volatile image (and count as crash points), and
// Sync flushes the queued mutations to the durable image in order — torn
// at a seeded byte boundary if the cut lands on it. A crash therefore
// loses every write since the last Sync, the worst case the filesystem
// permits, which makes a missing fsync a deterministic test failure
// rather than a latent bug. Survivor re-materialises the durable image.
type CrashBlob struct {
	ctl      *CrashController
	mu       sync.Mutex
	volatile []byte
	durable  []byte
	pending  []crashOp
}

var _ Blob = (*CrashBlob)(nil)

// NewCrashBlob returns an empty crash-faulted blob attached to ctl.
func NewCrashBlob(ctl *CrashController) *CrashBlob {
	return &CrashBlob{ctl: ctl}
}

// ReadAt implements Blob, serving the volatile image (the page cache).
func (b *CrashBlob) ReadAt(p []byte, off int64) (int, error) {
	if b.ctl.Crashed() {
		return 0, ErrCrashed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("%w: %d", ErrNegativeOffset, off)
	}
	if off >= int64(len(b.volatile)) {
		return 0, io.EOF
	}
	n := copy(p, b.volatile[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements Blob: volatile until the next Sync. The operation
// still counts as a crash point (persisting zero bytes when cut, exactly
// like a power failure before the flush).
func (b *CrashBlob) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: %d", ErrNegativeOffset, off)
	}
	if _, err := b.ctl.admit(0); err != nil {
		return 0, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if end := off + int64(len(p)); end > int64(len(b.volatile)) {
		grown := make([]byte, end)
		copy(grown, b.volatile)
		b.volatile = grown
	}
	copy(b.volatile[off:], p)
	b.pending = append(b.pending, crashOp{off: off, data: append([]byte(nil), p...)})
	return len(p), nil
}

// Truncate implements Blob; like WriteAt it is volatile until Sync.
func (b *CrashBlob) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("%w: %d", ErrNegativeOffset, size)
	}
	if _, err := b.ctl.admit(0); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if size <= int64(len(b.volatile)) {
		b.volatile = b.volatile[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, b.volatile)
		b.volatile = grown
	}
	b.pending = append(b.pending, crashOp{size: size, truncate: true})
	return nil
}

// Sync implements Blob, flushing the queued mutations to the durable
// image in order. A cut mid-flush persists a prefix of the queued bytes:
// whole operations up to the tear, then a torn prefix of the next.
func (b *CrashBlob) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for _, op := range b.pending {
		total += len(op.data)
	}
	persist, err := b.ctl.admit(total)
	budget := persist
	for _, op := range b.pending {
		if err != nil && budget <= 0 {
			break
		}
		if op.truncate {
			// Truncation carries no bytes; it persists if the flush
			// reached it.
			if size := op.size; size <= int64(len(b.durable)) {
				b.durable = b.durable[:size]
			} else {
				grown := make([]byte, size)
				copy(grown, b.durable)
				b.durable = grown
			}
			continue
		}
		n := len(op.data)
		if err != nil && n > budget {
			n = budget // torn flush: only a prefix of this op persists
		}
		if end := op.off + int64(n); end > int64(len(b.durable)) {
			grown := make([]byte, end)
			copy(grown, b.durable)
			b.durable = grown
		}
		copy(b.durable[op.off:], op.data[:n])
		budget -= n
	}
	if err != nil {
		return err
	}
	b.pending = b.pending[:0]
	return nil
}

// Size implements Blob.
func (b *CrashBlob) Size() (int64, error) {
	if b.ctl.Crashed() {
		return 0, ErrCrashed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(len(b.volatile)), nil
}

// Close implements Blob.
func (b *CrashBlob) Close() error { return nil }

// Survivor returns a MemBlob holding the durable image only: every write
// since the last completed Sync is gone, exactly as after a power cut.
func (b *CrashBlob) Survivor() *MemBlob {
	b.mu.Lock()
	defer b.mu.Unlock()
	return NewMemBlobBytes(b.durable)
}
