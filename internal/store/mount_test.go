package store

import (
	"errors"
	"testing"
)

// mountRig is an in-memory durable array: raw devices plus the metadata
// blobs (per-disk superblocks and the two journal regions), so tests can
// "power off", tamper with media, and remount.
type mountRig struct {
	v    int
	devs []*MemDevice
	sbs  []Blob
	j0   Blob
	j1   Blob
}

func newMountRig(t testing.TB, v int, cycles int64) *mountRig {
	t.Helper()
	an := oiAnalyzer(t, v)
	r := &mountRig{v: v, j0: NewMemBlob(), j1: NewMemBlob()}
	for i := 0; i < an.Disks(); i++ {
		dev, err := NewMemDevice(cycles*int64(an.SlotsPerDisk()), testStrip)
		if err != nil {
			t.Fatal(err)
		}
		r.devs = append(r.devs, dev)
		r.sbs = append(r.sbs, NewMemBlob())
	}
	return r
}

func (r *mountRig) devices() []Device {
	devs := make([]Device, len(r.devs))
	for i, d := range r.devs {
		devs[i] = d
	}
	return devs
}

func (r *mountRig) format(t testing.TB) *Mount {
	t.Helper()
	m, err := FormatArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func (r *mountRig) mount(t testing.TB) *Mount {
	t.Helper()
	m, err := MountArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFormatMountRoundTrip(t *testing.T) {
	r := newMountRig(t, 9, 2)
	m := r.format(t)
	want := fillArray(t, m.Array, 7)
	if err := m.Array.SealMeta(); err != nil {
		t.Fatal(err)
	}

	m2 := r.mount(t)
	if !m2.WasClean {
		t.Error("sealed array mounted as not clean")
	}
	if len(m2.Failed) != 0 || m2.Replayed != 0 {
		t.Fatalf("clean mount: failed %v, replayed %d", m2.Failed, m2.Replayed)
	}
	if m2.Meta.ArrayUUID() != m.Meta.ArrayUUID() {
		t.Error("array identity changed across remount")
	}
	if got := hashArray(t, m2.Array); got != want {
		t.Fatal("content hash changed across remount")
	}
	// Mount (un-clean) then seal bump epochs monotonically.
	if m2.Meta.Epoch() <= m.Meta.Epoch() {
		t.Fatalf("epoch did not advance: %d then %d", m.Meta.Epoch(), m2.Meta.Epoch())
	}
	// A crash now (no seal) mounts as not clean.
	m3 := r.mount(t)
	if m3.WasClean {
		t.Error("unsealed array mounted as clean")
	}
}

// TestMountDetectsOfflineCorruption is the acceptance scenario: a strip
// corrupted while the array was powered off is caught by the durable
// checksum on first read and healed from parity.
func TestMountDetectsOfflineCorruption(t *testing.T) {
	r := newMountRig(t, 9, 2)
	m := r.format(t)
	want := fillArray(t, m.Array, 11)
	if err := m.Array.SealMeta(); err != nil {
		t.Fatal(err)
	}

	// Power off; flip bits in the strip holding data index 0 behind the
	// array's back.
	disk, devStrip := m.Array.locate(0)
	dev := r.devs[disk]
	for i := 0; i < testStrip; i++ {
		dev.data[devStrip*int64(testStrip)+int64(i)] ^= 0xa5
	}

	m2 := r.mount(t)
	if len(m2.Failed) != 0 {
		t.Fatalf("corruption must not fail the disk at mount: %v", m2.Failed)
	}
	if got := hashArray(t, m2.Array); got != want {
		t.Fatal("offline corruption served to the reader")
	}
	st := m2.Array.Stats()
	if st.CorruptStrips == 0 || st.ReadRepairs == 0 {
		t.Fatalf("corruption not observed/healed: %+v", st)
	}
	// The heal rewrote the strip: a second full read is silent.
	m2.Array.ResetStats()
	if got := hashArray(t, m2.Array); got != want {
		t.Fatal("content wrong after heal")
	}
	if st := m2.Array.Stats(); st.CorruptStrips != 0 {
		t.Fatalf("strip not healed in place: %+v", st)
	}
}

func TestMountForeignDiskDetected(t *testing.T) {
	r := newMountRig(t, 9, 2)
	m := r.format(t)
	want := fillArray(t, m.Array, 3)
	if err := m.Array.SealMeta(); err != nil {
		t.Fatal(err)
	}
	// A disk from a different array lands in slot 4.
	other := newMountRig(t, 9, 2)
	other.format(t)
	r.sbs[4] = other.sbs[4]
	r.devs[4] = other.devs[4]

	m2 := r.mount(t)
	if len(m2.Detected) != 1 || m2.Detected[0] != 4 {
		t.Fatalf("detected %v, want [4]", m2.Detected)
	}
	if got := hashArray(t, m2.Array); got != want {
		t.Fatal("degraded content wrong with foreign disk failed")
	}
}

func TestMountStaleDiskDetected(t *testing.T) {
	r := newMountRig(t, 9, 2)
	m := r.format(t)
	fillArray(t, m.Array, 5)
	// Snapshot disk 5's superblock, advance the array two epochs, then
	// put the old copy back — the disk "missed" committed transitions.
	old := append([]byte(nil), r.sbs[5].(*MemBlob).Bytes()...)
	for i := 0; i < 2; i++ {
		if err := m.Array.SealMeta(); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.sbs[5].Truncate(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.sbs[5].WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}

	m2 := r.mount(t)
	if len(m2.Detected) != 1 || m2.Detected[0] != 5 {
		t.Fatalf("detected %v, want stale disk [5]", m2.Detected)
	}
}

// TestMountEpochMarginAccepted pins the crash-mid-commit tolerance: a
// disk exactly one epoch behind the consensus is healthy.
func TestMountEpochMarginAccepted(t *testing.T) {
	r := newMountRig(t, 9, 2)
	m := r.format(t)
	old := append([]byte(nil), r.sbs[5].(*MemBlob).Bytes()...)
	if err := m.Array.SealMeta(); err != nil { // one epoch ahead
		t.Fatal(err)
	}
	if err := r.sbs[5].Truncate(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.sbs[5].WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}
	m2 := r.mount(t)
	if len(m2.Detected) != 0 {
		t.Fatalf("disk one epoch behind failed: %v", m2.Detected)
	}
}

func TestMountMissingSuperblockDetected(t *testing.T) {
	r := newMountRig(t, 9, 2)
	m := r.format(t)
	want := fillArray(t, m.Array, 9)
	if err := m.Array.SealMeta(); err != nil {
		t.Fatal(err)
	}
	if err := r.sbs[0].Truncate(0); err != nil {
		t.Fatal(err)
	}
	m2 := r.mount(t)
	if len(m2.Detected) != 1 || m2.Detected[0] != 0 {
		t.Fatalf("detected %v, want [0]", m2.Detected)
	}
	if got := hashArray(t, m2.Array); got != want {
		t.Fatal("degraded content wrong with superblock-less disk failed")
	}
}

func TestMountRefusesTooManyFailures(t *testing.T) {
	r := newMountRig(t, 9, 2)
	m := r.format(t)
	if err := m.Array.SealMeta(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 6; d++ {
		if err := r.sbs[d].Truncate(0); err != nil {
			t.Fatal(err)
		}
	}
	_, err := MountArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1)
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err %v, want ErrTooManyFailures", err)
	}
}

func TestMountNoSuperblocks(t *testing.T) {
	r := newMountRig(t, 9, 2)
	_, err := MountArray(oiAnalyzer(t, r.v), r.devices(), r.sbs, r.j0, r.j1)
	if !errors.Is(err, ErrNoSuperblock) {
		t.Fatalf("err %v, want ErrNoSuperblock", err)
	}
}

// TestMountTransitionsCommit walks the full fail → adopt → rebuild chain
// and checks each transition survives a remount.
func TestMountTransitionsCommit(t *testing.T) {
	r := newMountRig(t, 9, 2)
	m := r.format(t)
	want := fillArray(t, m.Array, 13)
	if err := m.Array.FailDisk(3); err != nil {
		t.Fatal(err)
	}

	// Crash here: the eviction is already durable.
	m2 := r.mount(t)
	if len(m2.Failed) != 1 || m2.Failed[0] != 3 {
		t.Fatalf("failed %v after evict+remount, want [3]", m2.Failed)
	}
	if len(m2.Detected) != 0 {
		t.Fatalf("committed failure re-detected: %v", m2.Detected)
	}

	// Physically swap in a blank disk and rebuild.
	repl, err := NewMemDevice(r.devs[3].Strips(), testStrip)
	if err != nil {
		t.Fatal(err)
	}
	r.devs[3] = repl
	if err := m2.Array.ReplaceDisk(3, repl); err != nil {
		t.Fatal(err)
	}
	if err := m2.Array.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Array.SealMeta(); err != nil {
		t.Fatal(err)
	}

	m3 := r.mount(t)
	if len(m3.Failed) != 0 {
		t.Fatalf("failed %v after rebuild+remount, want none", m3.Failed)
	}
	if got := hashArray(t, m3.Array); got != want {
		t.Fatal("content wrong after rebuild and remount")
	}
	rep, err := m3.Array.Fsck(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("fsck not clean after rebuild: %+v", rep)
	}
}
