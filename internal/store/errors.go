package store

import (
	"errors"
	"fmt"
)

// Sentinel errors of the data plane. Callers branch with errors.Is; the
// network server maps them onto HTTP statuses. Every error returned by
// Array and Device methods that a caller could act on wraps one of these.
var (
	// ErrTooManyFailures reports a failure pattern beyond the scheme's
	// fault tolerance: some strip has no reconstruction path.
	ErrTooManyFailures = errors.New("store: failure pattern exceeds fault tolerance")
	// ErrDiskFaulty reports an operation that needs a healthy array (or a
	// healthy disk) while a disk is failed.
	ErrDiskFaulty = errors.New("store: disk is failed")
	// ErrNoSuchDisk reports a disk id outside [0, Disks).
	ErrNoSuchDisk = errors.New("store: no such disk")
	// ErrNotFailed reports a replacement attached to a disk that is not
	// failed.
	ErrNotFailed = errors.New("store: disk is not failed")
	// ErrNoReplacement reports a rebuild of a failed disk that has no
	// replacement device attached.
	ErrNoReplacement = errors.New("store: failed disk has no replacement device")
	// ErrStripOutOfRange reports a strip index outside the device or the
	// logical data space.
	ErrStripOutOfRange = errors.New("store: strip index out of range")
	// ErrBadGeometry reports devices whose strip size or capacity does not
	// fit the array layout.
	ErrBadGeometry = errors.New("store: invalid device geometry")
	// ErrShortBuffer reports a read/write buffer whose length is not the
	// strip size.
	ErrShortBuffer = errors.New("store: buffer length does not match strip size")
	// ErrNegativeOffset reports a negative byte offset.
	ErrNegativeOffset = errors.New("store: negative offset")
	// ErrClosed reports I/O on a closed device.
	ErrClosed = errors.New("store: device closed")
	// ErrTransient reports a device error that may succeed if retried:
	// a recoverable media hiccup, a timeout, a torn write that can be
	// reissued. RetryDevice absorbs these; the HTTP layer maps survivors
	// onto 503 + Retry-After.
	ErrTransient = errors.New("store: transient device error")
	// ErrPermanent reports a device that has failed for good: every
	// subsequent operation will error until the disk is evicted and its
	// content rebuilt onto a replacement.
	ErrPermanent = errors.New("store: permanent device error")
	// ErrOverloaded reports a request shed by admission control: the
	// engine's admission queue was full and the wait budget elapsed. The
	// HTTP layer maps it onto 429 + Retry-After; clients should back off
	// and retry, exactly as for 503.
	ErrOverloaded = errors.New("store: overloaded, request shed by admission control")
)

// ErrUnreachable reports a device whose backing transport — a storage
// node, a network path — cannot currently be reached. It wraps
// ErrTransient, so retry and backoff layers treat it like any other
// transient fault, but the health monitor does not count it toward disk
// eviction: the disk is not sick, the path to it is. The network device
// layer decides when unreachability becomes permanent (its grace window
// elapses and it starts returning ErrPermanent instead), and only then
// does the evict→spare→rebuild heal path engage.
var ErrUnreachable = fmt.Errorf("store: device unreachable: %w", ErrTransient)

// ErrIntentConflict reports a read-modify-write that found a pending redo
// record from a *different* write overlapping its parity closure. Acking
// over such a record would let a later replay of it rewind this write's
// committed strips, so the operation refuses instead. It wraps
// ErrTransient: the conflict clears as soon as the record's own writer
// retries (replaying its record) or a quiesced recovery replays it.
var ErrIntentConflict = fmt.Errorf("store: overlapping parity closure pending: %w", ErrTransient)

// ErrStaleEpoch reports a metadata or data-plane write fenced off by the
// storage nodes because it carried a fencing epoch older than the one a
// newer coordinator acquired. It deliberately wraps neither ErrTransient
// nor ErrPermanent: the media is healthy and the path is up — the writer
// has been deposed. Retrying cannot help (the epoch only moves forward),
// and counting it as a disk fault would evict healthy disks on the old
// leader, so retry loops and the health monitor must treat it as a
// terminal verdict on the writer, not on the device.
var ErrStaleEpoch = errors.New("store: write fenced off by a newer coordinator epoch")

// ErrStripUnavailable reports a read of a strip that the current failure
// pattern leaves undecodable: the pattern as a whole is beyond tolerance
// and the peeling decoder cannot produce this particular strip from
// survivors. Other strips of the same array may still be readable — this
// is the per-strip refinement of ErrTooManyFailures, which it wraps so
// existing errors.Is(ErrDataLoss) call sites keep matching. The HTTP
// layer maps it onto 410 Gone.
var ErrStripUnavailable = fmt.Errorf("store: strip unavailable under current failure pattern: %w", ErrTooManyFailures)

// ErrReadOnly reports a write refused because the array is serving in a
// degraded read-only (or partial-read) mode: the failure pattern is
// beyond tolerance, or the coordinator lost its quorum lease, and
// admitting writes would either land on undecodable stripes or race a
// newer leader. Reads continue; writes must wait for promotion back to
// a writable mode. The HTTP layer maps it onto 503 with an
// X-Oiraid-Mode header naming the serving mode.
var ErrReadOnly = errors.New("store: array is read-only while degraded beyond tolerance")

// ErrIntentReplay reports a failed replay of a pending redo record — the
// array could not restore a half-committed closure to consistency because
// a live strip it must rewrite is unreachable. The record stays pending;
// the operation that needed consistency (a rebuild step, a recovery pass)
// should be retried.
var ErrIntentReplay = errors.New("store: pending closure replay failed")

// IsTransient reports whether err is worth retrying at the same device —
// the branch the retry policy and the health monitor take between backoff
// (transient) and eviction (permanent).
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Historical names, kept so existing errors.Is call sites keep working.
// They are the same values as the canonical sentinels above.
var (
	// ErrDataLoss is the original name of ErrTooManyFailures.
	ErrDataLoss = ErrTooManyFailures
	// ErrDiskFailed is the original name of ErrDiskFaulty.
	ErrDiskFailed = ErrDiskFaulty
	// ErrOutOfRange is the original name of ErrStripOutOfRange.
	ErrOutOfRange = ErrStripOutOfRange
)
