package store

import (
	"fmt"
	"sort"
	"sync"

	"github.com/oiraid/oiraid/internal/core"
)

// ArrayMeta is the array's durable metadata plane: one superblock blob
// per disk plus the metadata journal. Every state transition commits a
// new superblock epoch across the live disks (skipping failed ones, whose
// copies age out as stale) before the transition is acknowledged.
type ArrayMeta struct {
	mu        sync.Mutex
	sbs       []Blob
	journal   *MetaJournal
	sb        Superblock // array-wide template (per-disk fields filled at write)
	diskUUIDs [][16]byte
}

// Epoch returns the current committed epoch.
func (m *ArrayMeta) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sb.Epoch
}

// ArrayUUID returns the array identity.
func (m *ArrayMeta) ArrayUUID() [16]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sb.ArrayUUID
}

// UUIDString formats the array identity.
func (m *ArrayMeta) UUIDString() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sb.UUIDString()
}

// Journal returns the metadata journal.
func (m *ArrayMeta) Journal() *MetaJournal { return m.journal }

// RebindSuperblock points disk's superblock slot at a new blob. A
// cluster replacement needs this: when a storage node is lost for good,
// the replacement devices for its disks live on surviving nodes, and the
// per-disk superblock copy must move with the data or the next commit
// would keep writing metadata into the dead node. The new blob receives
// its first superblock at the next commit; until then the mount-time
// consensus treats it like any other missing copy.
func (m *ArrayMeta) RebindSuperblock(disk int, b Blob) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if disk < 0 || disk >= len(m.sbs) {
		return fmt.Errorf("%w: disk %d of %d", ErrNoSuchDisk, disk, len(m.sbs))
	}
	if b == nil {
		return fmt.Errorf("%w: nil superblock blob for disk %d", ErrBadGeometry, disk)
	}
	// Truncate so a previous tenant's higher-epoch superblock cannot
	// shadow the copy the next commit writes.
	if err := b.Truncate(0); err != nil {
		return err
	}
	m.sbs[disk] = b
	return nil
}

// Superblock returns a copy of the array-wide superblock template.
func (m *ArrayMeta) Superblock() Superblock {
	m.mu.Lock()
	defer m.mu.Unlock()
	sb := m.sb
	sb.Failed = append([]int(nil), m.sb.Failed...)
	return sb
}

// commit bumps the epoch and writes the per-disk superblocks of every
// live disk (plus adopt, the disk being adopted, which re-enters the
// array while still in the failed set). mutate, when non-nil, edits the
// template before the bump. The first write error is returned; disks
// whose copy could not be written simply age out as stale at the next
// mount, which is the safe direction.
func (m *ArrayMeta) commit(failed []int, adopt int, mutate func(*Superblock)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sb.Failed = append([]int(nil), failed...)
	if mutate != nil {
		mutate(&m.sb)
	}
	m.sb.Epoch++
	failedSet := make(map[int]bool, len(failed))
	for _, d := range failed {
		failedSet[d] = true
	}
	var firstErr error
	for i, b := range m.sbs {
		if failedSet[i] && i != adopt {
			continue
		}
		sb := m.sb
		sb.DiskIndex = i
		sb.DiskUUID = m.diskUUIDs[i]
		sb.Generation = m.sb.Epoch
		if err := WriteSuperblock(b, &sb); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// commitFail journals the eviction and commits the new failed set.
func (m *ArrayMeta) commitFail(disk int, failed []int) error {
	if err := m.journal.RecordTransition(TransEvict, disk, m.Epoch()+1); err != nil {
		return err
	}
	return m.commit(failed, -1, nil)
}

// commitAdopt gives the adopted disk a fresh identity and commits; the
// disk stays in the failed set until its rebuild completes.
func (m *ArrayMeta) commitAdopt(disk int, failed []int) error {
	if err := m.journal.RecordTransition(TransAdopt, disk, m.Epoch()+1); err != nil {
		return err
	}
	m.mu.Lock()
	m.diskUUIDs[disk] = NewUUID()
	m.mu.Unlock()
	return m.commit(failed, disk, nil)
}

// commitRebuildDone journals completion for each recovered disk and
// commits the cleared failed set. The transition fsync also flushes the
// checksum records of every rebuild write that preceded it.
func (m *ArrayMeta) commitRebuildDone(recovered, failed []int) error {
	for _, d := range recovered {
		if err := m.journal.RecordTransition(TransRebuildDone, d, m.Epoch()+1); err != nil {
			return err
		}
	}
	return m.commit(failed, -1, func(sb *Superblock) { sb.RebuiltCycles = 0 })
}

// commitMount persists mount-time state: newly detected failures and the
// cleared Clean flag (set again only by a graceful Seal).
func (m *ArrayMeta) commitMount(failed []int) error {
	return m.commit(failed, -1, func(sb *Superblock) { sb.Clean = false })
}

// commitSeal records a graceful shutdown with the final cursors.
func (m *ArrayMeta) commitSeal(failed []int, rebuiltCycles, scrubCursor int64) error {
	return m.commit(failed, -1, func(sb *Superblock) {
		sb.RebuiltCycles = rebuiltCycles
		sb.ScrubCursor = scrubCursor
		sb.Clean = true
	})
}

// setMeta attaches the metadata plane; mount and format call it after
// assembly so transitions during assembly do not trigger commits.
func (a *Array) setMeta(m *ArrayMeta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.meta = m
}

// Meta returns the attached metadata plane, or nil for a volatile array.
func (a *Array) Meta() *ArrayMeta {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.meta
}

// SealMeta commits a clean-shutdown superblock (Clean flag plus the
// current recovery cursors). Call it after draining I/O; a mount that
// finds the flag knows the previous run shut down gracefully.
func (a *Array) SealMeta() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.meta == nil {
		return nil
	}
	return a.meta.commitSeal(a.failedListLocked(), a.rebuiltCycles, a.scrubCursor)
}

// Mount is the result of assembling an array from media.
type Mount struct {
	Array *Array
	Meta  *ArrayMeta
	// Super is the consensus superblock the mount was driven by (its
	// Failed set is the committed one; see Failed for the effective set).
	Super Superblock
	// Failed is the effective failed set: committed ∪ detected.
	Failed []int
	// Detected lists disks newly failed by mount-time detection
	// (missing, foreign, misplaced, or stale superblock).
	Detected []int
	// Replayed counts redo closures replayed from the journal.
	Replayed int
	// WasClean reports whether the previous run sealed the array.
	WasClean bool
	// Availability is the per-strip classification of the mounted
	// failure pattern; nil when no disk is failed.
	Availability *core.Availability
	// ReadOnly reports that the pattern is beyond tolerance and the
	// array was mounted write-fenced under a non-refuse DegradedPolicy.
	ReadOnly bool
}

// FormatOption customises FormatArray.
type FormatOption func(*Superblock)

// WithDegradedPolicy sets the format-time degradation policy persisted
// in every superblock copy.
func WithDegradedPolicy(p DegradedPolicy) FormatOption {
	return func(sb *Superblock) { sb.Degraded = p }
}

// MountOption customises MountArray.
type MountOption func(*mountConfig)

type mountConfig struct {
	policy *DegradedPolicy
}

// WithMountDegradedPolicy overrides the superblock's degradation policy
// for this mount only — the operator's "mount it read-only anyway"
// escape hatch, and the cluster manifest's policy wiring for arrays
// formatted before the policy byte existed.
func WithMountDegradedPolicy(p DegradedPolicy) MountOption {
	return func(c *mountConfig) { c.policy = &p }
}

// FormatArray initialises the durable metadata plane for a new array:
// fresh journal, fresh identities, superblocks on every disk. Device
// content is left untouched (an existing volatile array can be upgraded
// in place; its strips simply carry no checksums until rewritten), but
// any previous metadata in the blobs is destroyed. The returned mount is
// ready to serve.
func FormatArray(an *core.Analyzer, devs []Device, sbs []Blob, j0, j1 Blob, opts ...FormatOption) (*Mount, error) {
	if len(devs) != an.Disks() || len(sbs) != an.Disks() {
		return nil, fmt.Errorf("%w: %d devices, %d superblocks for %d disks",
			ErrBadGeometry, len(devs), len(sbs), an.Disks())
	}
	for _, b := range []Blob{j0, j1} {
		if err := b.Truncate(0); err != nil {
			return nil, err
		}
	}
	journal, err := OpenMetaJournal(j0, j1, an.Disks())
	if err != nil {
		return nil, err
	}
	wrapped := make([]Device, len(devs))
	for i, dev := range devs {
		wrapped[i] = NewDurableChecksummedDevice(dev, i, nil, journal)
	}
	arr, err := NewArray(an, wrapped)
	if err != nil {
		return nil, err
	}
	meta := &ArrayMeta{
		sbs:     sbs,
		journal: journal,
		sb: Superblock{
			ArrayUUID:    NewUUID(),
			Disks:        an.Disks(),
			SlotsPerDisk: an.SlotsPerDisk(),
			Cycles:       arr.Cycles(),
			StripBytes:   arr.StripBytes(),
		},
		diskUUIDs: make([][16]byte, len(devs)),
	}
	for _, opt := range opts {
		opt(&meta.sb)
	}
	for i := range meta.diskUUIDs {
		meta.diskUUIDs[i] = NewUUID()
	}
	// Truncate any stale superblocks before the first commit, so a
	// re-format cannot leave a higher-epoch ghost in the unused slot.
	for _, b := range sbs {
		if err := b.Truncate(0); err != nil {
			return nil, err
		}
	}
	if err := meta.commit(nil, -1, nil); err != nil {
		return nil, err
	}
	arr.SetIntentLog(journal)
	arr.setMeta(meta)
	return &Mount{Array: arr, Meta: meta, Super: meta.Superblock()}, nil
}

// MountArray assembles an array from its on-media metadata. It loads
// every superblock, derives the consensus (majority array UUID, highest
// epoch), fails disks whose copy is missing, foreign, misplaced, or
// stale (epoch more than one behind — one behind is a crash mid-commit
// and accepted), verifies geometry, replays the metadata journal (redo
// closures are replayed even degraded), and commits a mount epoch. It
// consults the DegradedPolicy — superblock state, overridable per mount —
// when the effective failure set exceeds the layout's recovery
// capability: refuse fails with ErrTooManyFailures (naming the failed
// disks and the violating inner groups), read-only and partial mount the
// array write-fenced and serve the decodable strips. It returns
// ErrJournalCorrupt when the journal header region is undecodable.
func MountArray(an *core.Analyzer, devs []Device, sbs []Blob, j0, j1 Blob, opts ...MountOption) (*Mount, error) {
	var cfg mountConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(devs) != an.Disks() || len(sbs) != an.Disks() {
		return nil, fmt.Errorf("%w: %d devices, %d superblocks for %d disks",
			ErrBadGeometry, len(devs), len(sbs), an.Disks())
	}
	loaded := make([]*Superblock, len(sbs))
	valid := 0
	for i, b := range sbs {
		sb, err := LoadSuperblock(b)
		if err != nil {
			continue
		}
		loaded[i] = sb
		valid++
	}
	if valid == 0 {
		return nil, fmt.Errorf("%w: no disk carries one", ErrNoSuperblock)
	}

	// Consensus identity: majority UUID, ties broken by highest epoch.
	type camp struct {
		count int
		best  *Superblock
	}
	camps := make(map[[16]byte]*camp)
	for _, sb := range loaded {
		if sb == nil {
			continue
		}
		c := camps[sb.ArrayUUID]
		if c == nil {
			c = &camp{}
			camps[sb.ArrayUUID] = c
		}
		c.count++
		if c.best == nil || sb.Epoch > c.best.Epoch {
			c.best = sb
		}
	}
	var cons *Superblock
	consCount := 0
	for _, c := range camps {
		if c.count > consCount || (c.count == consCount && cons != nil && c.best.Epoch > cons.Epoch) {
			cons, consCount = c.best, c.count
		}
	}

	// Geometry must match the analyzer and the attached devices.
	if cons.Disks != an.Disks() || cons.SlotsPerDisk != an.SlotsPerDisk() {
		return nil, fmt.Errorf("%w: superblock %d disks × %d slots, analyzer %d × %d",
			ErrSuperblockMismatch, cons.Disks, cons.SlotsPerDisk, an.Disks(), an.SlotsPerDisk())
	}
	slots := int64(an.SlotsPerDisk())
	minStrips := devs[0].Strips()
	for _, dev := range devs {
		if dev.StripBytes() != cons.StripBytes {
			return nil, fmt.Errorf("%w: device strip %d, superblock %d",
				ErrSuperblockMismatch, dev.StripBytes(), cons.StripBytes)
		}
		if dev.Strips() < minStrips {
			minStrips = dev.Strips()
		}
	}
	if minStrips/slots != cons.Cycles {
		return nil, fmt.Errorf("%w: devices hold %d cycles, superblock %d",
			ErrSuperblockMismatch, minStrips/slots, cons.Cycles)
	}

	// Per-disk validation against the consensus.
	committed := make(map[int]bool, len(cons.Failed))
	for _, d := range cons.Failed {
		committed[d] = true
	}
	failedSet := make(map[int]bool, len(cons.Failed))
	for _, d := range cons.Failed {
		failedSet[d] = true
	}
	var detected []int
	fail := func(d int) {
		if !failedSet[d] {
			failedSet[d] = true
			detected = append(detected, d)
		}
	}
	for i, sb := range loaded {
		if committed[i] {
			continue // already failed; its copy is allowed to lag
		}
		switch {
		case sb == nil:
			fail(i) // missing or corrupt superblock
		case sb.ArrayUUID != cons.ArrayUUID:
			fail(i) // foreign disk
		case sb.DiskIndex != i:
			fail(i) // misplaced disk
		case sb.Epoch+1 < cons.Epoch:
			fail(i) // stale: missed at least one committed transition
		}
	}
	failed := make([]int, 0, len(failedSet))
	for d := range failedSet {
		failed = append(failed, d)
	}
	sort.Ints(failed)

	// Classify the failure pattern per strip. A recoverable pattern
	// serves degraded-rw as before; a beyond-tolerance pattern consults
	// the DegradedPolicy instead of refusing on the flat count.
	var av *core.Availability
	degraded := false
	if len(failed) > 0 {
		av = an.Availability(failed)
		if !av.Recoverable {
			policy := cons.Degraded
			if cfg.policy != nil {
				policy = *cfg.policy
			}
			switch {
			case policy == DegradedRefuse:
				return nil, fmt.Errorf("%w at mount: %s; policy %q refuses beyond-tolerance service",
					ErrTooManyFailures, av.Describe(), policy)
			case policy == DegradedReadOnly && !av.DataComplete:
				return nil, fmt.Errorf("%w at mount: %s; policy %q needs every data strip decodable (policy %q would serve the readable subset)",
					ErrTooManyFailures, av.Describe(), policy, DegradedPartial)
			}
			degraded = true
		}
	}

	journal, err := OpenMetaJournal(j0, j1, an.Disks())
	if err != nil {
		return nil, err
	}
	wrapped := make([]Device, len(devs))
	for i, dev := range devs {
		wrapped[i] = NewDurableChecksummedDevice(dev, i, journal.Sums(i), journal)
	}
	arr, err := NewArray(an, wrapped)
	if err != nil {
		return nil, err
	}
	for _, d := range failed {
		if err := arr.FailDisk(d); err != nil { // meta not attached: no commit
			return nil, err
		}
	}
	arr.SetIntentLog(journal)
	replayed, err := arr.RecoverIntent()
	if err != nil {
		return nil, fmt.Errorf("store: mount replay: %w", err)
	}
	if degraded {
		arr.SetReadOnly(true)
	}
	arr.mu.Lock()
	if cons.ScrubCursor < arr.cycles {
		arr.scrubCursor = cons.ScrubCursor
	}
	arr.mu.Unlock()

	meta := &ArrayMeta{
		sbs:       sbs,
		journal:   journal,
		sb:        *cons,
		diskUUIDs: make([][16]byte, len(devs)),
	}
	meta.sb.Failed = append([]int(nil), failed...)
	for i, sb := range loaded {
		if sb != nil && sb.ArrayUUID == cons.ArrayUUID && sb.DiskIndex == i {
			meta.diskUUIDs[i] = sb.DiskUUID
		}
	}
	arr.setMeta(meta)
	// Commit the mount: newly detected failures become durable and the
	// Clean flag clears until the next graceful seal.
	if err := meta.commitMount(failed); err != nil {
		return nil, err
	}
	return &Mount{
		Array:        arr,
		Meta:         meta,
		Super:        *cons,
		Failed:       failed,
		Detected:     detected,
		Replayed:     replayed,
		WasClean:     cons.Clean,
		Availability: av,
		ReadOnly:     degraded,
	}, nil
}
