package netdev

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"github.com/oiraid/oiraid/internal/store"
)

// genHeader carries a metadata blob's generation on read responses.
const genHeader = "X-Oiraid-Gen"

// This file is the node half of the replicated-metadata plane: the
// fencing promise a coordinator quorum acquires leadership through, and
// the generation-tracked metadata blobs the coordinator replicates its
// manifest and journal regions into.
//
// Fencing invariant (Paxos-style promise): the node stores the highest
// epoch it has ever seen and rejects any epoch-stamped write below it.
// A lease is not time-based on the node — safety comes entirely from
// the fence, liveness from standbys watching the renewal counter stall.
//
// Generation invariant: every metadata blob carries a generation the
// coordinator bumps on truncation. A write stamped with a generation
// above the node's wipes the blob first (the node provably missed the
// truncation that started the new stream), and a write below it is
// rejected — so a blob replica at generation G holds only zeros and
// bytes of the generation-G stream, which is what makes frame-level
// merge recovery sound.

// MetaBlobStat describes one metadata blob in a node's meta state.
type MetaBlobStat struct {
	Gen  uint64 `json:"gen"`
	Size int64  `json:"size"`
}

// MetaState is a node's view of the metadata plane, served by
// GET /node/v1/meta/state.
type MetaState struct {
	Node     string                  `json:"node"`
	Epoch    uint64                  `json:"epoch"`
	Holder   string                  `json:"holder"`
	RenewSeq uint64                  `json:"renew_seq"`
	Blobs    map[string]MetaBlobStat `json:"blobs"`
}

// nodeMetaState is the durable part of the fence (meta.state on dir
// nodes). RenewSeq is deliberately volatile: it only signals liveness.
type nodeMetaState struct {
	Epoch  uint64            `json:"epoch"`
	Holder string            `json:"holder"`
	Gens   map[string]uint64 `json:"gens"`
}

func (n *Node) metaStatePath() string { return filepath.Join(n.dir, "meta.state") }

// loadMetaState restores the fencing promise and blob generations of a
// directory-backed node, reopening the metadata blob files.
func (n *Node) loadMetaState() error {
	raw, err := os.ReadFile(n.metaStatePath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var st nodeMetaState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("netdev: meta state %s: %w", n.metaStatePath(), err)
	}
	n.epoch, n.holder = st.Epoch, st.Holder
	for name, gen := range st.Gens {
		b, err := n.newBlob("meta-" + name)
		if err != nil {
			return fmt.Errorf("netdev: reopen meta blob %s: %w", name, err)
		}
		n.metaGens[name] = gen
		n.metaBlobs[name] = b
	}
	return nil
}

// saveMetaState persists the fencing promise, called with metaMu held.
// The write is atomic (temp + fsync + rename + dir sync): a half-written
// promise would let a deposed coordinator back in after a node restart.
func (n *Node) saveMetaState() error {
	if n.dir == "" {
		return nil
	}
	st := nodeMetaState{Epoch: n.epoch, Holder: n.holder, Gens: n.metaGens}
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return store.AtomicWriteFile(n.metaStatePath(), raw, 0o644)
}

// checkEpoch enforces the fencing promise for one epoch-stamped write,
// called with metaMu held. Higher epochs are adopted on the spot — the
// legitimate leader may have acquired its lease while this node was
// partitioned away, and its first write is as good as the lease call.
func (n *Node) checkEpoch(epoch uint64) error {
	if epoch < n.epoch {
		return fmt.Errorf("%w: epoch %d, node promised %d to %q",
			store.ErrStaleEpoch, epoch, n.epoch, n.holder)
	}
	if epoch > n.epoch {
		n.epoch = epoch
		n.holder = ""
		if err := n.saveMetaState(); err != nil {
			return err
		}
	}
	return nil
}

// fenceOK gates a data-plane write handler on the optional epoch query
// parameter. Requests without one pass — single-coordinator deployments
// and pre-fencing clients stay valid — but once a coordinator stamps its
// writes, a node that has promised a newer epoch refuses the old one,
// which is what keeps a deposed coordinator's strip writes, superblock
// seals, and replacement provisioning off the shared media.
func (n *Node) fenceOK(w http.ResponseWriter, r *http.Request) bool {
	s := r.URL.Query().Get("epoch")
	if s == "" {
		return true
	}
	epoch, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, fmt.Errorf("netdev: bad epoch %q", s))
		return false
	}
	n.metaMu.Lock()
	err = n.checkEpoch(epoch)
	n.metaMu.Unlock()
	if err != nil {
		failMeta(w, err)
		return false
	}
	return true
}

// failMeta maps metadata-plane errors onto coded responses.
func failMeta(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrStaleEpoch):
		fail(w, http.StatusConflict, codeStaleEpoch, err)
	case errors.Is(err, errStaleGen):
		fail(w, http.StatusConflict, codeStaleGen, err)
	default:
		failErr(w, err)
	}
}

var errStaleGen = fmt.Errorf("netdev: stale metadata blob generation")

func (n *Node) handleMetaState(w http.ResponseWriter, r *http.Request) {
	n.metaMu.Lock()
	st := MetaState{
		Node:     n.id,
		Epoch:    n.epoch,
		Holder:   n.holder,
		RenewSeq: n.renewSeq,
		Blobs:    make(map[string]MetaBlobStat, len(n.metaBlobs)),
	}
	for name, b := range n.metaBlobs {
		size, err := b.Size()
		if err != nil {
			size = -1
		}
		st.Blobs[name] = MetaBlobStat{Gen: n.metaGens[name], Size: size}
	}
	n.metaMu.Unlock()
	writeJSON(w, st)
}

// leaseReq is the body of POST /node/v1/meta/lease.
type leaseReq struct {
	Epoch  uint64 `json:"epoch"`
	Holder string `json:"holder"`
	Renew  bool   `json:"renew"`
}

func (n *Node) handleMetaLease(w http.ResponseWriter, r *http.Request) {
	var req leaseReq
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	n.metaMu.Lock()
	defer n.metaMu.Unlock()
	if req.Renew {
		// Renewal never moves the fence; it only proves the holder alive.
		if req.Epoch != n.epoch || req.Holder != n.holder {
			failMeta(w, fmt.Errorf("%w: renew epoch %d holder %q, node promised %d to %q",
				store.ErrStaleEpoch, req.Epoch, req.Holder, n.epoch, n.holder))
			return
		}
		n.renewSeq++
		writeJSON(w, map[string]uint64{"epoch": n.epoch, "renew_seq": n.renewSeq})
		return
	}
	switch {
	case req.Epoch > n.epoch:
		n.epoch, n.holder = req.Epoch, req.Holder
		n.renewSeq++
		if err := n.saveMetaState(); err != nil {
			failErr(w, err)
			return
		}
	case req.Epoch == n.epoch && req.Holder == n.holder && n.holder != "":
		// Idempotent re-acquire: the grant response was lost.
	default:
		failMeta(w, fmt.Errorf("%w: acquire epoch %d, node promised %d to %q",
			store.ErrStaleEpoch, req.Epoch, n.epoch, n.holder))
		return
	}
	writeJSON(w, map[string]any{"epoch": n.epoch, "holder": n.holder})
}

// metaBlob resolves (creating on demand) a metadata blob and applies the
// fence + generation rules for a write stamped (epoch, gen). Called with
// metaMu held; returns the blob ready for the operation.
func (n *Node) metaBlobForWrite(name string, epoch, gen uint64) (store.Blob, error) {
	if err := n.checkEpoch(epoch); err != nil {
		return nil, err
	}
	cur, known := n.metaGens[name]
	if known && gen < cur {
		return nil, fmt.Errorf("%w: blob %s gen %d, node at %d", errStaleGen, name, gen, cur)
	}
	b, ok := n.metaBlobs[name]
	if !ok {
		var err error
		if b, err = n.newBlob("meta-" + name); err != nil {
			return nil, err
		}
		n.metaBlobs[name] = b
	}
	if !known || gen > cur {
		// The node missed the truncation that opened generation gen: wipe,
		// so the blob holds nothing from the destroyed stream.
		if err := b.Truncate(0); err != nil {
			return nil, err
		}
		n.metaGens[name] = gen
		if err := n.saveMetaState(); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// metaWriteParams parses the mandatory epoch/gen stamps of a metadata
// blob write.
func metaWriteParams(r *http.Request) (epoch, gen uint64, err error) {
	if epoch, err = strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("netdev: bad meta epoch: %v", err)
	}
	if gen, err = strconv.ParseUint(r.URL.Query().Get("gen"), 10, 64); err != nil {
		return 0, 0, fmt.Errorf("netdev: bad meta gen: %v", err)
	}
	return epoch, gen, nil
}

func (n *Node) handleMetaRead(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	n.metaMu.Lock()
	b, ok := n.metaBlobs[name]
	gen := n.metaGens[name]
	n.metaMu.Unlock()
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: meta blob %s", ErrNodeNotFound, name))
		return
	}
	off, err := strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	length, err := strconv.Atoi(r.URL.Query().Get("len"))
	if err != nil || length < 0 || length > 64<<20 {
		fail(w, http.StatusBadRequest, codeBadGeometry, fmt.Errorf("netdev: bad meta read length"))
		return
	}
	buf := make([]byte, length)
	nr, rerr := b.ReadAt(buf, off)
	if rerr != nil && rerr != io.EOF {
		failErr(w, rerr)
		return
	}
	buf = buf[:nr]
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(crcHeader, blobCRC(buf))
	w.Header().Set(genHeader, strconv.FormatUint(gen, 10))
	if rerr == io.EOF {
		w.Header().Set(eofHeader, "1")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
}

func (n *Node) handleMetaWrite(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		fail(w, http.StatusBadRequest, codeBadGeometry, fmt.Errorf("netdev: bad meta blob name %q", name))
		return
	}
	epoch, gen, err := metaWriteParams(r)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	off, err := strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20+1))
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadFrame, fmt.Errorf("%w: %v", ErrBadFrame, err))
		return
	}
	if want := r.Header.Get(crcHeader); want != "" && want != blobCRC(body) {
		fail(w, http.StatusBadRequest, codeBadFrame,
			fmt.Errorf("%w: meta body crc %s, header says %s", ErrBadFrame, blobCRC(body), want))
		return
	}
	n.metaMu.Lock()
	defer n.metaMu.Unlock()
	b, err := n.metaBlobForWrite(name, epoch, gen)
	if err != nil {
		failMeta(w, err)
		return
	}
	nw, werr := b.WriteAt(body, off)
	if werr != nil {
		failErr(w, werr)
		return
	}
	writeJSON(w, map[string]int{"written": nw})
}

func (n *Node) handleMetaSync(w http.ResponseWriter, r *http.Request) {
	epoch, gen, err := metaWriteParams(r)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	n.metaMu.Lock()
	defer n.metaMu.Unlock()
	b, err := n.metaBlobForWrite(r.PathValue("name"), epoch, gen)
	if err != nil {
		failMeta(w, err)
		return
	}
	if err := b.Sync(); err != nil {
		failErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleMetaTruncate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validName(name) {
		fail(w, http.StatusBadRequest, codeBadGeometry, fmt.Errorf("netdev: bad meta blob name %q", name))
		return
	}
	epoch, gen, err := metaWriteParams(r)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	size, err := strconv.ParseInt(r.URL.Query().Get("size"), 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	n.metaMu.Lock()
	defer n.metaMu.Unlock()
	// A truncation always opens (or re-opens) its stamped generation:
	// metaBlobForWrite wipes when the node is behind, and the explicit
	// Truncate below settles the requested size either way.
	b, err := n.metaBlobForWrite(name, epoch, gen)
	if err != nil {
		failMeta(w, err)
		return
	}
	if err := b.Truncate(size); err != nil {
		failErr(w, err)
		return
	}
	if err := b.Sync(); err != nil {
		failErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
