package netdev

import (
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	b := EncodeFrame(OpWrite, 42, payload)
	if len(b) != FrameHeaderLen+len(payload) {
		t.Fatalf("frame length %d, want %d", len(b), FrameHeaderLen+len(payload))
	}
	fr, err := DecodeFrame(b, len(payload))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if fr.Op != OpWrite || fr.Strip != 42 || len(fr.Payload) != len(payload) {
		t.Fatalf("frame = op %d strip %d len %d", fr.Op, fr.Strip, len(fr.Payload))
	}
	for i := range payload {
		if fr.Payload[i] != payload[i] {
			t.Fatalf("payload byte %d differs", i)
		}
	}
}

func TestFrameRoundTripEmpty(t *testing.T) {
	b := EncodeFrame(OpRead, 0, nil)
	fr, err := DecodeFrame(b, 0)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if len(fr.Payload) != 0 {
		t.Fatalf("payload %d bytes", len(fr.Payload))
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	good := EncodeFrame(OpRead, 7, []byte("hello strip payload"))
	cases := map[string]func() []byte{
		"short header": func() []byte { return good[:FrameHeaderLen-1] },
		"truncated body": func() []byte {
			return good[:len(good)-3]
		},
		"oversized body": func() []byte {
			return append(append([]byte(nil), good...), 0xFF)
		},
		"bad magic": func() []byte {
			b := append([]byte(nil), good...)
			b[0] ^= 0xFF
			return b
		},
		"bad version": func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		},
		"reserved bits set": func() []byte {
			b := append([]byte(nil), good...)
			b[6] = 1
			return b
		},
		"crc mismatch": func() []byte {
			b := append([]byte(nil), good...)
			b[FrameHeaderLen] ^= 0x01
			return b
		},
		"length lies": func() []byte {
			b := append([]byte(nil), good...)
			binary.BigEndian.PutUint32(b[16:20], uint32(len(good))) // > actual body
			return b
		},
	}
	for name, make := range cases {
		if _, err := DecodeFrame(make(), 1<<20); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestFrameDecodeBoundsPayload(t *testing.T) {
	b := EncodeFrame(OpRead, 0, make([]byte, 100))
	if _, err := DecodeFrame(b, 99); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized vs bound: err = %v, want ErrBadFrame", err)
	}
	if _, err := DecodeFrame(b, 100); err != nil {
		t.Fatalf("exact bound: %v", err)
	}
	if _, err := DecodeFrame(b, -1); err != nil {
		t.Fatalf("unbounded: %v", err)
	}
}
