package netdev

import (
	"bytes"
	"errors"
	"testing"

	"github.com/oiraid/oiraid/internal/store"
)

// TestNetDeviceRangeRoundTrip covers the bulk-migration surface: ranged
// reads/writes move whole cycles in one request and the checksums match
// the per-strip contents.
func TestNetDeviceRangeRoundTrip(t *testing.T) {
	_, srv := startNode(t, "n0")
	c := NewNodeClient(srv.URL, fastOpts())
	defer c.Close()

	const strips, stripBytes = 8, 128
	dev, err := c.CreateDevice("d0", strips, stripBytes)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	bulk := make([]byte, 4*stripBytes)
	for i := range bulk {
		bulk[i] = byte(i * 7)
	}
	if err := dev.WriteStripRange(2, bulk); err != nil {
		t.Fatalf("write range: %v", err)
	}
	// Bulk write is idempotent — a migration retry must be harmless.
	if err := dev.WriteStripRange(2, bulk); err != nil {
		t.Fatalf("re-write range: %v", err)
	}

	got, err := dev.ReadStripRange(2, 4)
	if err != nil {
		t.Fatalf("read range: %v", err)
	}
	if !bytes.Equal(got, bulk) {
		t.Fatalf("range round-trip differs")
	}
	// Per-strip reads see the same bytes the bulk write landed.
	one := make([]byte, stripBytes)
	for i := int64(0); i < 4; i++ {
		if err := dev.ReadStrip(2+i, one); err != nil {
			t.Fatalf("read strip %d: %v", 2+i, err)
		}
		if !bytes.Equal(one, bulk[i*stripBytes:(i+1)*stripBytes]) {
			t.Fatalf("strip %d differs from bulk write", 2+i)
		}
	}

	// StripSums is the resume verifier: one checksum per strip, equal to
	// the CRC of the strip's bytes.
	sums, err := dev.StripSums(2, 4)
	if err != nil {
		t.Fatalf("sums: %v", err)
	}
	if len(sums) != 4 {
		t.Fatalf("got %d sums, want 4", len(sums))
	}
	for i, sum := range sums {
		if want := StripCRC(bulk[i*stripBytes : (i+1)*stripBytes]); sum != want {
			t.Fatalf("sum %d = %q, want %q", i, sum, want)
		}
	}

	// Sentinel taxonomy on the ranged surface.
	if err := dev.WriteStripRange(6, bulk); !errors.Is(err, store.ErrStripOutOfRange) {
		t.Fatalf("overrun write: %v", err)
	}
	if err := dev.WriteStripRange(0, bulk[:stripBytes+1]); !errors.Is(err, store.ErrShortBuffer) {
		t.Fatalf("ragged write: %v", err)
	}
	if _, err := dev.ReadStripRange(6, 4); !errors.Is(err, store.ErrStripOutOfRange) {
		t.Fatalf("overrun read: %v", err)
	}
}

// TestNetDeviceRangeFencing pins the epoch discipline on the migration
// surface: mutations from a stale epoch die ErrStaleEpoch, reads and
// checksums stay unfenced, classic (un-fenced) clients are untouched.
func TestNetDeviceRangeFencing(t *testing.T) {
	_, srv := startNode(t, "n0")

	// The current coordinator: epoch 5, holds the lease.
	cur := NewNodeClient(srv.URL, fastOpts())
	defer cur.Close()
	curFence := &FenceToken{}
	curFence.Advance(5)
	cur.SetFence(curFence)
	if err := cur.AcquireLease(5, "coord-b"); err != nil {
		t.Fatalf("acquire lease: %v", err)
	}

	const strips, stripBytes = 8, 128
	dev, err := cur.CreateDevice("d0", strips, stripBytes)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := cur.CreateBlob("sb0"); err != nil {
		t.Fatalf("create blob: %v", err)
	}
	bulk := make([]byte, 2*stripBytes)
	for i := range bulk {
		bulk[i] = byte(i)
	}
	if err := dev.WriteStripRange(0, bulk); err != nil {
		t.Fatalf("fenced write at current epoch: %v", err)
	}

	// The deposed coordinator: epoch 4. Every mutation must bounce.
	stale := NewNodeClient(srv.URL, fastOpts())
	defer stale.Close()
	staleFence := &FenceToken{}
	staleFence.Advance(4)
	stale.SetFence(staleFence)
	sdev := stale.Device("d0", strips, stripBytes)
	if err := sdev.WriteStripRange(0, bulk); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale bulk write: %v, want ErrStaleEpoch", err)
	}
	if err := sdev.WriteStrip(0, bulk[:stripBytes]); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale strip write: %v, want ErrStaleEpoch", err)
	}
	if err := stale.DeleteDevice("d0"); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale device delete: %v, want ErrStaleEpoch", err)
	}
	if err := stale.DeleteBlob("sb0"); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale blob delete: %v, want ErrStaleEpoch", err)
	}
	// Reads and sums are unfenced: a deposed coordinator may still look.
	if got, err := sdev.ReadStripRange(0, 2); err != nil || !bytes.Equal(got, bulk) {
		t.Fatalf("stale read range: %v", err)
	}
	if _, err := sdev.StripSums(0, 2); err != nil {
		t.Fatalf("stale sums: %v", err)
	}
	// The stale mutations never landed.
	if got, err := dev.ReadStripRange(0, 2); err != nil || !bytes.Equal(got, bulk) {
		t.Fatalf("content after stale attempts: %v", err)
	}

	// Classic mode: a client with no fence at all is always allowed.
	classic := NewNodeClient(srv.URL, fastOpts())
	defer classic.Close()
	cdev := classic.Device("d0", strips, stripBytes)
	if err := cdev.WriteStripRange(0, bulk); err != nil {
		t.Fatalf("unfenced write: %v", err)
	}

	// Reclaim from the live epoch: idempotent, and the media is gone.
	if err := cur.DeleteDevice("d0"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := cur.DeleteDevice("d0"); err != nil {
		t.Fatalf("re-delete: %v", err)
	}
	if err := cur.DeleteBlob("sb0"); err != nil {
		t.Fatalf("delete blob: %v", err)
	}
	if _, err := cur.OpenDevice("d0"); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("open after delete: %v", err)
	}
}
