package netdev

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oiraid/oiraid/internal/store"
)

// ErrNodeLost reports a node whose unreachability outlived the grace
// window: the client has declared it gone for good. It wraps
// store.ErrPermanent, so the health monitor counts it toward eviction
// and the evict→spare→rebuild heal path engages for the node's disks.
var ErrNodeLost = fmt.Errorf("netdev: node lost: %w", store.ErrPermanent)

// ErrWrongNode reports a node that answered with an unexpected identity:
// the address points at a different node than the manifest says (a DHCP
// lease moved, a port was reused). Treated as permanent — retrying the
// same address cannot fix a mis-wired cluster map.
var ErrWrongNode = fmt.Errorf("netdev: node identity mismatch: %w", store.ErrPermanent)

// Options tunes a NodeClient. The zero value gets usable defaults.
type Options struct {
	// Timeout bounds each attempt (connect + request + response),
	// default 2s.
	Timeout time.Duration
	// MaxAttempts bounds attempts per operation (default 3).
	MaxAttempts int
	// BaseDelay seeds the full-jitter backoff between attempts (default
	// 2ms); MaxDelay caps it (default 100ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// BreakerThreshold opens the per-node circuit after this many
	// consecutive attempt failures (default 5); while open, operations
	// fail fast without touching the wire until BreakerCooldown (default
	// 500ms) elapses and a half-open trial is allowed.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Grace is how long the node may stay unreachable before the client
	// declares it lost (operations turn from store.ErrUnreachable into
	// ErrNodeLost). Zero means never: the node is only ever transiently
	// down. The window starts at the first failed operation after a
	// period of health.
	Grace time.Duration
	// ProbeInterval is the background ping cadence while the node is
	// down (default 250ms). The prober drives the down→up transition
	// even when no foreground operations are flowing.
	ProbeInterval time.Duration
	// ExpectID, when set, makes the client verify the node's /ping
	// identity and fail permanently on mismatch.
	ExpectID string
	// Seed fixes the backoff jitter stream for deterministic tests.
	Seed int64
	// Transport overrides the HTTP transport (fault injection hook).
	Transport http.RoundTripper
	// OnDown runs (in its own goroutine, at most once per down episode)
	// when the node transitions reachable→unreachable; OnUp runs on the
	// way back. Close drains both.
	OnDown func()
	OnUp   func()
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 2 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 100 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 500 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	return o
}

// NodeClient is the coordinator's handle on one storage node: it owns
// the retry/backoff/breaker machinery every NetDevice and NetBlob on
// that node shares, plus the node's reachability state machine:
//
//	reachable --attempts exhausted--> down --grace elapses--> lost
//	     ^---------probe succeeds--------'        (terminal)
//
// While down, operations fail with store.ErrUnreachable (transient: the
// engine's monitor does not count it toward eviction, and the cluster
// layer quarantines the node's disks so reads reconstruct around them).
// Once lost, operations fail with ErrNodeLost (permanent: eviction and
// heal). A background prober pings the node while it is down, so
// recovery is detected even with no foreground traffic.
type NodeClient struct {
	base string
	hc   *http.Client
	opts Options

	mu        sync.Mutex
	rng       *rand.Rand
	consec    int       // consecutive attempt failures (breaker input)
	openUntil time.Time // breaker: fail fast until; zero = closed
	halfOpen  bool      // one trial in flight after cooldown
	down      bool
	downSince time.Time
	probing   bool

	lost   atomic.Bool
	closed atomic.Bool

	// cbWg tracks OnDown/OnUp callback goroutines and probeWg the
	// background prober; Close drains both so an engine shutdown leaves
	// no transport goroutine behind.
	cbWg      sync.WaitGroup
	probeWg   sync.WaitGroup
	probeStop chan struct{}

	// fence, when set, stamps every mutating request with the
	// coordinator's fencing epoch (see SetFence).
	fence atomic.Pointer[FenceToken]

	stats struct {
		attempts, retries, breakerFastFails atomic.Int64
		downs, ups                          atomic.Int64
	}
}

// NewNodeClient builds a client for the node at base (e.g.
// "http://127.0.0.1:7980").
func NewNodeClient(base string, opts Options) *NodeClient {
	opts = opts.withDefaults()
	hc := &http.Client{Transport: opts.Transport}
	return &NodeClient{
		base:      strings.TrimRight(base, "/"),
		hc:        hc,
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		probeStop: make(chan struct{}),
	}
}

// Base returns the node's base URL.
func (c *NodeClient) Base() string { return c.base }

// Down reports whether the node is currently considered unreachable.
func (c *NodeClient) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// Lost reports whether the node has been declared lost for good.
func (c *NodeClient) Lost() bool { return c.lost.Load() }

// Close stops the background prober, waits for in-flight OnDown/OnUp
// callbacks, and closes idle connections. Operations after Close return
// store.ErrClosed.
func (c *NodeClient) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.probeStop)
	c.probeWg.Wait()
	c.cbWg.Wait()
	tr := c.hc.Transport
	if tr == nil {
		tr = http.DefaultTransport
	}
	if t, ok := tr.(interface{ CloseIdleConnections() }); ok {
		t.CloseIdleConnections()
	}
	return nil
}

// attemptErr classifies one attempt's failure.
type attemptErr struct {
	err       error
	retryable bool // wire-level: worth another attempt / counts toward breaker
}

// remoteErr reconstitutes the store sentinel from a coded node response.
// The second result reports whether the failure is wire-retryable.
func remoteErr(status int, code, body string) (error, bool) {
	msg := strings.TrimSpace(body)
	switch code {
	case codeOutOfRange:
		return fmt.Errorf("%w: %s", store.ErrStripOutOfRange, msg), false
	case codeShortBuffer:
		return fmt.Errorf("%w: %s", store.ErrShortBuffer, msg), false
	case codeBadGeometry:
		return fmt.Errorf("%w: %s", store.ErrBadGeometry, msg), false
	case codeNotFound:
		return fmt.Errorf("%w: %s", ErrNodeNotFound, msg), false
	case codeClosed:
		// The node-side device is closed (node shutting down): transient
		// from the coordinator's perspective — a restart reopens it.
		return fmt.Errorf("%w: %s", store.ErrTransient, msg), true
	case codeBadFrame:
		// The frame was damaged in flight; re-send.
		return fmt.Errorf("%w: %s", ErrBadFrame, msg), true
	case codePermanent:
		// The node's local media is dying. This must NOT look like a
		// network fault: it propagates as a permanent device error so
		// the monitor evicts exactly that disk.
		return fmt.Errorf("%w: %s", store.ErrPermanent, msg), false
	case codeTransient:
		return fmt.Errorf("%w: %s", store.ErrTransient, msg), true
	case codeStaleEpoch:
		// The node has promised a newer coordinator epoch: this client
		// has been deposed. Never retried — fencing is final.
		return fmt.Errorf("%w: %s", store.ErrStaleEpoch, msg), false
	case codeStaleGen:
		// Same verdict at blob granularity: a newer coordinator has
		// already truncated this metadata blob into a new stream.
		return fmt.Errorf("%w: %s", ErrStaleGen, msg), false
	default:
		if status >= 500 {
			return fmt.Errorf("%w: node status %d: %s", store.ErrTransient, status, msg), true
		}
		return fmt.Errorf("netdev: node status %d: %s", status, msg), false
	}
}

// do runs op with retries, backoff, and the breaker. op performs one
// HTTP attempt under ctx and returns nil, a terminal error (wrapped in
// attemptErr with retryable=false), or a retryable one.
func (c *NodeClient) do(op func(ctx context.Context) *attemptErr) error {
	if c.closed.Load() {
		return store.ErrClosed
	}
	if c.lost.Load() {
		return ErrNodeLost
	}
	var last error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if c.closed.Load() {
			return store.ErrClosed
		}
		if !c.allow() {
			// Breaker open: fail fast. The episode classification below
			// still applies — the node is down, maybe lost.
			c.stats.breakerFastFails.Add(1)
			last = fmt.Errorf("netdev: circuit open for %s", c.base)
			break
		}
		if attempt > 0 {
			c.stats.retries.Add(1)
			time.Sleep(c.backoff(attempt))
		}
		c.stats.attempts.Add(1)
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
		aerr := op(ctx)
		cancel()
		if aerr == nil {
			c.recordSuccess()
			return nil
		}
		if !aerr.retryable {
			// The node answered and rejected the operation: the wire is
			// fine. A permanent media error or a caller bug passes
			// through unchanged.
			c.recordSuccess()
			return aerr.err
		}
		c.recordFailure()
		last = aerr.err
	}
	return c.classifyDown(last)
}

// allow asks the breaker whether an attempt may go out.
func (c *NodeClient) allow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openUntil.IsZero() {
		return true
	}
	if time.Now().Before(c.openUntil) {
		return false
	}
	if c.halfOpen {
		return false // one trial at a time
	}
	c.halfOpen = true
	return true
}

func (c *NodeClient) backoff(retry int) time.Duration {
	d := c.opts.BaseDelay << uint(retry-1)
	if d > c.opts.MaxDelay || d <= 0 {
		d = c.opts.MaxDelay
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d) + 1))
	c.mu.Unlock()
	return j
}

// recordSuccess closes the breaker and ends a down episode.
func (c *NodeClient) recordSuccess() {
	c.mu.Lock()
	c.consec = 0
	c.openUntil = time.Time{}
	c.halfOpen = false
	wasDown := c.down
	c.down = false
	c.mu.Unlock()
	if wasDown {
		c.stats.ups.Add(1)
		c.fire(c.opts.OnUp)
	}
}

// recordFailure counts one wire-level failure toward the breaker.
func (c *NodeClient) recordFailure() {
	c.mu.Lock()
	c.consec++
	if c.consec >= c.opts.BreakerThreshold {
		c.openUntil = time.Now().Add(c.opts.BreakerCooldown)
		c.halfOpen = false
	}
	c.mu.Unlock()
}

// classifyDown ends a failed operation: the node is (still) down. The
// first failure of an episode stamps downSince and starts the prober;
// once the grace window elapses the node is declared lost.
func (c *NodeClient) classifyDown(cause error) error {
	now := time.Now()
	c.mu.Lock()
	if !c.down {
		c.down = true
		c.downSince = now
		c.stats.downs.Add(1)
		if !c.probing && !c.closed.Load() {
			c.probing = true
			c.probeWg.Add(1)
			go c.probeLoop()
		}
		c.mu.Unlock()
		c.fire(c.opts.OnDown)
		c.mu.Lock()
	}
	elapsed := now.Sub(c.downSince)
	c.mu.Unlock()
	if c.opts.Grace > 0 && elapsed >= c.opts.Grace {
		c.markLost()
		return fmt.Errorf("%w (down %v, cause: %v)", ErrNodeLost, elapsed.Round(time.Millisecond), cause)
	}
	return fmt.Errorf("%w: %s (%v)", store.ErrUnreachable, c.base, cause)
}

func (c *NodeClient) markLost() { c.lost.Store(true) }

// fire runs a reachability callback in a tracked goroutine. Callbacks
// must not run inline: markDown fires from inside device operations that
// hold array locks, and the cluster layer's handlers (quarantine,
// release) take them again.
func (c *NodeClient) fire(fn func()) {
	if fn == nil {
		return
	}
	c.cbWg.Add(1)
	go func() {
		defer c.cbWg.Done()
		fn()
	}()
}

// probeLoop pings the node while it is down. A successful ping ends the
// episode (recordSuccess fires OnUp); a grace expiry declares the node
// lost and stops probing — there is nothing left to recover to, the
// disks are being rebuilt elsewhere. Each wait is jittered (see
// probeDelay) so a fleet of clients watching the same node does not
// probe in lockstep and stampede it the moment a partition heals.
func (c *NodeClient) probeLoop() {
	defer c.probeWg.Done()
	timer := time.NewTimer(c.probeDelay())
	defer timer.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-timer.C:
		}
		timer.Reset(c.probeDelay())
		c.mu.Lock()
		down := c.down
		since := c.downSince
		c.mu.Unlock()
		if !down {
			c.mu.Lock()
			c.probing = false
			c.mu.Unlock()
			return
		}
		if c.opts.Grace > 0 && time.Since(since) >= c.opts.Grace {
			c.markLost()
			c.mu.Lock()
			c.probing = false
			c.mu.Unlock()
			return
		}
		if err := c.pingOnce(); err == nil {
			c.recordSuccess()
			c.mu.Lock()
			c.probing = false
			c.mu.Unlock()
			return
		}
	}
}

// probeDelay draws the next probe wait, uniform in [½, 1½)× the
// configured interval. Deterministic per client via the seeded rng, but
// de-correlated across clients (each gets its own seed offset), which is
// what breaks the thundering herd on a node that just came back.
func (c *NodeClient) probeDelay() time.Duration {
	base := c.opts.ProbeInterval
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(base)))
	c.mu.Unlock()
	return base/2 + j
}

// pingOnce performs a single identity-checked ping without retry
// machinery (the prober is its own retry loop).
func (c *NodeClient) pingOnce() error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/node/v1/ping", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("netdev: ping status %d", resp.StatusCode)
	}
	var body struct {
		Node string `json:"node"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err != nil {
		return err
	}
	if c.opts.ExpectID != "" && body.Node != c.opts.ExpectID {
		c.markLost()
		return fmt.Errorf("%w: want %q, got %q", ErrWrongNode, c.opts.ExpectID, body.Node)
	}
	return nil
}

// Ping verifies the node answers (and, with ExpectID set, that it is
// the right node), through the full retry/breaker machinery.
func (c *NodeClient) Ping() error {
	return c.do(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/node/v1/ping", nil)
		if err != nil {
			return &attemptErr{err: err, retryable: false}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return c.responseErr(resp)
		}
		var body struct {
			Node string `json:"node"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		if c.opts.ExpectID != "" && body.Node != c.opts.ExpectID {
			c.markLost()
			return &attemptErr{err: fmt.Errorf("%w: want %q, got %q", ErrWrongNode, c.opts.ExpectID, body.Node)}
		}
		return nil
	})
}

// Stat fetches the node's inventory.
func (c *NodeClient) Stat() (NodeStat, error) {
	var st NodeStat
	err := c.getJSON("/node/v1/stat", &st)
	return st, err
}

// responseErr turns a non-2xx node response into a classified attempt
// error.
func (c *NodeClient) responseErr(resp *http.Response) *attemptErr {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	err, retryable := remoteErr(resp.StatusCode, resp.Header.Get(errHeader), string(body))
	return &attemptErr{err: err, retryable: retryable}
}

// getJSON GETs path and decodes the JSON response.
func (c *NodeClient) getJSON(path string, v any) error {
	return c.do(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return &attemptErr{err: err}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return c.responseErr(resp)
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(v); err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		return nil
	})
}

// postJSON POSTs a JSON body to path; out, when non-nil, receives the
// decoded response.
func (c *NodeClient) postJSON(path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	return c.do(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return &attemptErr{err: err}
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
			return c.responseErr(resp)
		}
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out); err != nil {
				return &attemptErr{err: err, retryable: true}
			}
		}
		return nil
	})
}

// drain consumes and closes a response body so the connection can be
// reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// ClientStats is a snapshot of the client's wire counters.
type ClientStats struct {
	Attempts         int64 `json:"attempts"`
	Retries          int64 `json:"retries"`
	BreakerFastFails int64 `json:"breaker_fast_fails"`
	Downs            int64 `json:"downs"`
	Ups              int64 `json:"ups"`
}

// Stats returns the client's counters.
func (c *NodeClient) Stats() ClientStats {
	return ClientStats{
		Attempts:         c.stats.attempts.Load(),
		Retries:          c.stats.retries.Load(),
		BreakerFastFails: c.stats.breakerFastFails.Load(),
		Downs:            c.stats.downs.Load(),
		Ups:              c.stats.ups.Load(),
	}
}
