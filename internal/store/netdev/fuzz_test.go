package netdev

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode drives the strip-transport codec with arbitrary
// bytes: whatever arrives — truncated, oversized, bit-flipped, or
// hostile — the decoder must either reject it or return a frame that
// re-encodes to the identical wire bytes (no mutation survives decode
// silently). This is the same media-facing-decoder discipline as
// FuzzSuperblockDecode and FuzzJournalReplay, pointed at the network.
func FuzzFrameDecode(f *testing.F) {
	f.Add(EncodeFrame(OpRead, 0, nil), 4096)
	f.Add(EncodeFrame(OpWrite, 7, []byte("some strip payload")), 4096)
	f.Add(EncodeFrame(OpRead, 1<<40, make([]byte, 512)), 512)
	f.Add([]byte{}, 0)
	f.Add([]byte("oSTP"), 16)
	f.Add(bytes.Repeat([]byte{0xFF}, FrameHeaderLen), 64)
	// Truncated and padded variants of a valid frame.
	good := EncodeFrame(OpWrite, 3, bytes.Repeat([]byte{0xAB}, 128))
	f.Add(good[:FrameHeaderLen], 128)
	f.Add(good[:len(good)-1], 128)
	f.Add(append(append([]byte(nil), good...), 0x00), 128)

	f.Fuzz(func(t *testing.T, data []byte, maxPayload int) {
		if maxPayload < -1 || maxPayload > 1<<20 {
			maxPayload = 1 << 20
		}
		fr, err := DecodeFrame(data, maxPayload)
		if err != nil {
			return
		}
		// Accepted: the frame must re-encode to exactly the input bytes.
		out := EncodeFrame(fr.Op, fr.Strip, fr.Payload)
		// The op byte and reserved fields round-trip by construction, so
		// any divergence means the decoder accepted a malformed frame.
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted frame does not round-trip: in %d bytes, out %d bytes", len(data), len(out))
		}
		if maxPayload >= 0 && len(fr.Payload) > maxPayload {
			t.Fatalf("decoder accepted %d payload bytes past bound %d", len(fr.Payload), maxPayload)
		}
	})
}
