package netdev

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"github.com/oiraid/oiraid/internal/store"
)

// Error codes carried in the X-Oiraid-Err response header. The client
// switches on the code — not on status text — to reconstitute the store
// sentinel on its side of the wire, so the error taxonomy survives the
// network hop.
const (
	errHeader = "X-Oiraid-Err"

	codeOutOfRange  = "out-of-range"
	codeShortBuffer = "short-buffer"
	codeClosed      = "closed"
	codeBadGeometry = "bad-geometry"
	codeBadFrame    = "bad-frame"
	codeNotFound    = "not-found"
	codeTransient   = "transient"
	codePermanent   = "permanent"
	codeIO          = "io"
	// codeStaleEpoch rejects a write stamped with a fencing epoch older
	// than the one this node has promised to honour: the writer has been
	// deposed by a newer coordinator. Non-retryable by design.
	codeStaleEpoch = "stale-epoch"
	// codeStaleGen rejects a metadata-blob write stamped with a blob
	// generation older than the node's: the writer missed a truncation
	// and its bytes belong to a destroyed stream.
	codeStaleGen = "stale-gen"
)

// crcHeader carries the CRC-32C of a blob read/write body; eofHeader
// marks a blob read that ran off the end of the blob (os.File ReadAt
// semantics: prefix + EOF).
const (
	crcHeader = "X-Oiraid-Crc"
	eofHeader = "X-Oiraid-Eof"
)

// ErrNodeNotFound reports a device or blob name the node does not serve.
var ErrNodeNotFound = errors.New("netdev: no such device or blob on node")

// DeviceStat is one exported device's geometry, as served by /stat.
type DeviceStat struct {
	Strips     int64 `json:"strips"`
	StripBytes int   `json:"strip_bytes"`
}

// NodeStat is the storage node's inventory, served by GET /node/v1/stat.
type NodeStat struct {
	Node    string                `json:"node"`
	Devices map[string]DeviceStat `json:"devices"`
	Blobs   map[string]int64      `json:"blobs"`
}

// Node exports a set of named strip devices and metadata blobs over
// HTTP. It is the server half of the network plane: a coordinator's
// NetDevice/NetBlob clients drive it. The zero tricks rule applies —
// every handler validates before touching media, and strip payloads are
// refused unless their frame checksum verifies, so a torn request can
// never place damaged bytes on a disk.
type Node struct {
	id  string
	dir string // non-empty for directory-backed nodes

	mu    sync.RWMutex
	devs  map[string]store.Device
	geo   map[string]DeviceStat
	blobs map[string]store.Blob

	newDev  func(name string, strips int64, stripBytes int) (store.Device, error)
	newBlob func(name string) (store.Blob, error)

	// Replicated-metadata surface: the fencing promise (epoch + holder),
	// the lease-renewal liveness counter, and the generation-tracked
	// metadata blobs a coordinator quorum-replicates its manifest and
	// journal regions into. Guarded by metaMu (not mu: data-plane fence
	// checks must not contend with inventory scans).
	metaMu    sync.Mutex
	epoch     uint64
	holder    string
	renewSeq  uint64
	metaGens  map[string]uint64
	metaBlobs map[string]store.Blob
}

// NewMemNode builds a memory-backed storage node (tests, benchmarks).
// Devices and blobs created through the API live until the node is
// garbage collected, so closing and re-serving the same Node models a
// node restart that keeps its media.
func NewMemNode(id string) *Node {
	n := &Node{
		id:        id,
		devs:      map[string]store.Device{},
		geo:       map[string]DeviceStat{},
		blobs:     map[string]store.Blob{},
		metaGens:  map[string]uint64{},
		metaBlobs: map[string]store.Blob{},
	}
	n.newDev = func(_ string, strips int64, stripBytes int) (store.Device, error) {
		return store.NewMemDevice(strips, stripBytes)
	}
	n.newBlob = func(string) (store.Blob, error) { return store.NewMemBlob(), nil }
	return n
}

// NewDirNode builds (or reopens) a directory-backed storage node: each
// device is an image file, each blob a flat file, and a node.json
// manifest records device geometry so a restart reopens everything
// as-is.
func NewDirNode(id, dir string) (*Node, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	n := &Node{
		id:        id,
		dir:       dir,
		devs:      map[string]store.Device{},
		geo:       map[string]DeviceStat{},
		blobs:     map[string]store.Blob{},
		metaGens:  map[string]uint64{},
		metaBlobs: map[string]store.Blob{},
	}
	n.newDev = func(name string, strips int64, stripBytes int) (store.Device, error) {
		return store.NewFileDevice(filepath.Join(dir, name+".img"), strips, stripBytes)
	}
	n.newBlob = func(name string) (store.Blob, error) {
		return store.CreateFileBlob(filepath.Join(dir, name+".blob"))
	}
	if err := n.loadManifest(); err != nil {
		return nil, err
	}
	if err := n.loadMetaState(); err != nil {
		return nil, err
	}
	return n, nil
}

// nodeManifest is the persisted inventory of a directory-backed node.
type nodeManifest struct {
	Devices map[string]DeviceStat `json:"devices"`
	Blobs   []string              `json:"blobs"`
}

func (n *Node) manifestPath() string { return filepath.Join(n.dir, "node.json") }

func (n *Node) loadManifest() error {
	raw, err := os.ReadFile(n.manifestPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var m nodeManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("netdev: node manifest %s: %w", n.manifestPath(), err)
	}
	for name, g := range m.Devices {
		dev, err := store.OpenFileDevice(filepath.Join(n.dir, name+".img"), g.Strips, g.StripBytes)
		if err != nil {
			return fmt.Errorf("netdev: reopen device %s: %w", name, err)
		}
		n.devs[name] = dev
		n.geo[name] = g
	}
	for _, name := range m.Blobs {
		b, err := store.OpenFileBlob(filepath.Join(n.dir, name+".blob"))
		if err != nil {
			return fmt.Errorf("netdev: reopen blob %s: %w", name, err)
		}
		n.blobs[name] = b
	}
	return nil
}

// saveManifest persists the inventory atomically (write + rename +
// directory sync), called with n.mu held.
func (n *Node) saveManifest() error {
	if n.dir == "" {
		return nil
	}
	m := nodeManifest{Devices: n.geo, Blobs: make([]string, 0, len(n.blobs))}
	for name := range n.blobs {
		m.Blobs = append(m.Blobs, name)
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := n.manifestPath() + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, n.manifestPath()); err != nil {
		return err
	}
	return store.SyncDir(n.dir)
}

// ID returns the node identity echoed by /ping.
func (n *Node) ID() string { return n.id }

// Close closes every device and blob the node serves.
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	var first error
	for _, d := range n.devs {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, b := range n.blobs {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	n.metaMu.Lock()
	for _, b := range n.metaBlobs {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	n.metaMu.Unlock()
	return first
}

// AddDevice registers an existing device under name (test hook: lets a
// FaultDevice-wrapped device stand behind the network plane).
func (n *Node) AddDevice(name string, dev store.Device) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.devs[name] = dev
	n.geo[name] = DeviceStat{Strips: dev.Strips(), StripBytes: dev.StripBytes()}
}

// AddBlob registers an existing blob under name.
func (n *Node) AddBlob(name string, b store.Blob) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blobs[name] = b
}

func (n *Node) device(name string) (store.Device, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	d, ok := n.devs[name]
	return d, ok
}

func (n *Node) blob(name string) (store.Blob, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	b, ok := n.blobs[name]
	return b, ok
}

// Handler returns the node's HTTP surface, mounted under /node/v1/.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /node/v1/ping", n.handlePing)
	mux.HandleFunc("GET /node/v1/stat", n.handleStat)
	mux.HandleFunc("POST /node/v1/devices/{dev}", n.handleCreateDevice)
	mux.HandleFunc("DELETE /node/v1/devices/{dev}", n.handleDeleteDevice)
	mux.HandleFunc("GET /node/v1/devices/{dev}/strips/{idx}", n.handleReadStrip)
	mux.HandleFunc("PUT /node/v1/devices/{dev}/strips/{idx}", n.handleWriteStrip)
	mux.HandleFunc("GET /node/v1/devices/{dev}/range", n.handleReadRange)
	mux.HandleFunc("PUT /node/v1/devices/{dev}/range", n.handleWriteRange)
	mux.HandleFunc("GET /node/v1/devices/{dev}/sums", n.handleStripSums)
	mux.HandleFunc("POST /node/v1/blobs/{name}", n.handleCreateBlob)
	mux.HandleFunc("DELETE /node/v1/blobs/{name}", n.handleDeleteBlob)
	mux.HandleFunc("GET /node/v1/blobs/{name}", n.handleReadBlob)
	mux.HandleFunc("PUT /node/v1/blobs/{name}", n.handleWriteBlob)
	mux.HandleFunc("GET /node/v1/blobs/{name}/stat", n.handleStatBlob)
	mux.HandleFunc("POST /node/v1/blobs/{name}/sync", n.handleSyncBlob)
	mux.HandleFunc("POST /node/v1/blobs/{name}/truncate", n.handleTruncateBlob)
	mux.HandleFunc("GET /node/v1/meta/state", n.handleMetaState)
	mux.HandleFunc("POST /node/v1/meta/lease", n.handleMetaLease)
	mux.HandleFunc("GET /node/v1/meta/blobs/{name}", n.handleMetaRead)
	mux.HandleFunc("PUT /node/v1/meta/blobs/{name}", n.handleMetaWrite)
	mux.HandleFunc("POST /node/v1/meta/blobs/{name}/sync", n.handleMetaSync)
	mux.HandleFunc("POST /node/v1/meta/blobs/{name}/truncate", n.handleMetaTruncate)
	return mux
}

// fail writes a coded error response: the X-Oiraid-Err header carries
// the taxonomy code the client reconstitutes a sentinel from, the body
// a human-readable message.
func fail(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set(errHeader, code)
	http.Error(w, err.Error(), status)
}

// failErr maps a store error onto a coded response.
func failErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrStripOutOfRange):
		fail(w, http.StatusRequestedRangeNotSatisfiable, codeOutOfRange, err)
	case errors.Is(err, store.ErrShortBuffer):
		fail(w, http.StatusBadRequest, codeShortBuffer, err)
	case errors.Is(err, store.ErrClosed):
		fail(w, http.StatusServiceUnavailable, codeClosed, err)
	case errors.Is(err, store.ErrBadGeometry), errors.Is(err, store.ErrNegativeOffset):
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
	case errors.Is(err, store.ErrPermanent):
		// The node's local media is failing: say so distinctly, because
		// the coordinator must count this against the disk (eviction),
		// unlike a network fault which it must not.
		fail(w, http.StatusInternalServerError, codePermanent, err)
	case store.IsTransient(err):
		fail(w, http.StatusServiceUnavailable, codeTransient, err)
	default:
		fail(w, http.StatusInternalServerError, codeIO, err)
	}
}

func (n *Node) handlePing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"node": n.id})
}

func (n *Node) handleStat(w http.ResponseWriter, r *http.Request) {
	n.mu.RLock()
	st := NodeStat{Node: n.id, Devices: map[string]DeviceStat{}, Blobs: map[string]int64{}}
	for name, g := range n.geo {
		st.Devices[name] = g
	}
	blobs := make(map[string]store.Blob, len(n.blobs))
	for name, b := range n.blobs {
		blobs[name] = b
	}
	n.mu.RUnlock()
	for name, b := range blobs {
		size, err := b.Size()
		if err != nil {
			size = -1
		}
		st.Blobs[name] = size
	}
	writeJSON(w, st)
}

// createDeviceReq is the body of POST /node/v1/devices/{dev}.
type createDeviceReq struct {
	Strips     int64 `json:"strips"`
	StripBytes int   `json:"strip_bytes"`
}

func (n *Node) handleCreateDevice(w http.ResponseWriter, r *http.Request) {
	if !n.fenceOK(w, r) {
		return
	}
	name := r.PathValue("dev")
	if !validName(name) {
		fail(w, http.StatusBadRequest, codeBadGeometry, fmt.Errorf("netdev: bad device name %q", name))
		return
	}
	var req createDeviceReq
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if g, ok := n.geo[name]; ok {
		// Idempotent when the geometry matches: a coordinator retrying a
		// create (its ack was lost) must not error out.
		if g.Strips == req.Strips && g.StripBytes == req.StripBytes {
			writeJSON(w, g)
			return
		}
		fail(w, http.StatusConflict, codeBadGeometry,
			fmt.Errorf("netdev: device %s exists with %dx%d, requested %dx%d",
				name, g.Strips, g.StripBytes, req.Strips, req.StripBytes))
		return
	}
	dev, err := n.newDev(name, req.Strips, req.StripBytes)
	if err != nil {
		failErr(w, err)
		return
	}
	n.devs[name] = dev
	n.geo[name] = DeviceStat{Strips: req.Strips, StripBytes: req.StripBytes}
	if err := n.saveManifest(); err != nil {
		failErr(w, err)
		return
	}
	writeJSON(w, n.geo[name])
}

func (n *Node) handleReadStrip(w http.ResponseWriter, r *http.Request) {
	dev, ok := n.device(r.PathValue("dev"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: device %s", ErrNodeNotFound, r.PathValue("dev")))
		return
	}
	idx, err := strconv.ParseInt(r.PathValue("idx"), 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeOutOfRange, err)
		return
	}
	buf := make([]byte, dev.StripBytes())
	if err := dev.ReadStrip(idx, buf); err != nil {
		failErr(w, err)
		return
	}
	frame := EncodeFrame(OpRead, idx, buf)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.Write(frame)
}

func (n *Node) handleWriteStrip(w http.ResponseWriter, r *http.Request) {
	if !n.fenceOK(w, r) {
		return
	}
	dev, ok := n.device(r.PathValue("dev"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: device %s", ErrNodeNotFound, r.PathValue("dev")))
		return
	}
	idx, err := strconv.ParseInt(r.PathValue("idx"), 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeOutOfRange, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, int64(FrameHeaderLen+dev.StripBytes())+1))
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadFrame, fmt.Errorf("%w: %v", ErrBadFrame, err))
		return
	}
	fr, err := DecodeFrame(body, dev.StripBytes())
	if err != nil {
		// The frame did not survive the wire (or the sender is broken
		// in a way the checksum catches). Refuse: damaged bytes must not
		// reach media. The client treats bad-frame as transient and
		// re-sends.
		fail(w, http.StatusBadRequest, codeBadFrame, err)
		return
	}
	if fr.Op != OpWrite {
		fail(w, http.StatusBadRequest, codeBadFrame, fmt.Errorf("%w: op %d on write", ErrBadFrame, fr.Op))
		return
	}
	if fr.Strip != idx {
		// URL and frame disagree about the target strip: a routing bug
		// or a mixed-up retry. Refusing keeps a misdirected write from
		// silently landing on the wrong strip.
		fail(w, http.StatusBadRequest, codeBadFrame, fmt.Errorf("%w: frame strip %d, url strip %d", ErrBadFrame, fr.Strip, idx))
		return
	}
	if len(fr.Payload) != dev.StripBytes() {
		fail(w, http.StatusBadRequest, codeShortBuffer,
			fmt.Errorf("%w: %d payload bytes, strip is %d", store.ErrShortBuffer, len(fr.Payload), dev.StripBytes()))
		return
	}
	if err := dev.WriteStrip(idx, fr.Payload); err != nil {
		failErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// rangeMaxBytes caps one bulk strip-range transfer. Large enough to
// amortise per-request overhead during migration, small enough that a
// single request can neither exhaust node memory nor stall the handler
// for long.
const rangeMaxBytes = 16 << 20

// rangeBounds validates a strip-range request against the device
// geometry.
func rangeBounds(dev store.Device, start int64, count int) error {
	if start < 0 || count <= 0 || start+int64(count) > dev.Strips() {
		return fmt.Errorf("%w: range [%d,%d) of %d strips", store.ErrStripOutOfRange, start, start+int64(count), dev.Strips())
	}
	if int64(count)*int64(dev.StripBytes()) > rangeMaxBytes {
		return fmt.Errorf("%w: range of %d strips × %d bytes exceeds %d-byte cap", store.ErrBadGeometry, count, dev.StripBytes(), rangeMaxBytes)
	}
	return nil
}

// handleReadRange serves count strips starting at start as one
// contiguous body, checksummed as a whole (crcHeader) — the bulk read
// half of strip migration.
func (n *Node) handleReadRange(w http.ResponseWriter, r *http.Request) {
	dev, ok := n.device(r.PathValue("dev"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: device %s", ErrNodeNotFound, r.PathValue("dev")))
		return
	}
	start, err1 := strconv.ParseInt(r.URL.Query().Get("start"), 10, 64)
	count, err2 := strconv.Atoi(r.URL.Query().Get("count"))
	if err1 != nil || err2 != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, fmt.Errorf("netdev: bad range query"))
		return
	}
	if err := rangeBounds(dev, start, count); err != nil {
		failErr(w, err)
		return
	}
	sb := dev.StripBytes()
	buf := make([]byte, count*sb)
	for i := 0; i < count; i++ {
		if err := dev.ReadStrip(start+int64(i), buf[i*sb:(i+1)*sb]); err != nil {
			failErr(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(crcHeader, blobCRC(buf))
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
}

// handleWriteRange lands a contiguous run of strips in one request — the
// bulk write half of strip migration. Fenced like every mutating
// endpoint, and the body checksum must verify before any strip touches
// media, so a torn transfer places nothing.
func (n *Node) handleWriteRange(w http.ResponseWriter, r *http.Request) {
	if !n.fenceOK(w, r) {
		return
	}
	dev, ok := n.device(r.PathValue("dev"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: device %s", ErrNodeNotFound, r.PathValue("dev")))
		return
	}
	start, err := strconv.ParseInt(r.URL.Query().Get("start"), 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, rangeMaxBytes+1))
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadFrame, fmt.Errorf("%w: %v", ErrBadFrame, err))
		return
	}
	sb := dev.StripBytes()
	if len(body) == 0 || len(body)%sb != 0 {
		fail(w, http.StatusBadRequest, codeShortBuffer,
			fmt.Errorf("%w: %d body bytes, strip is %d", store.ErrShortBuffer, len(body), sb))
		return
	}
	count := len(body) / sb
	if err := rangeBounds(dev, start, count); err != nil {
		failErr(w, err)
		return
	}
	if want := r.Header.Get(crcHeader); want != "" && want != blobCRC(body) {
		fail(w, http.StatusBadRequest, codeBadFrame,
			fmt.Errorf("%w: range body crc %s, header says %s", ErrBadFrame, blobCRC(body), want))
		return
	}
	for i := 0; i < count; i++ {
		if err := dev.WriteStrip(start+int64(i), body[i*sb:(i+1)*sb]); err != nil {
			failErr(w, err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStripSums serves per-strip CRC-32C checksums for a range — the
// cheap side channel a resuming migration uses to verify its committed
// prefix without re-reading the data over the wire.
func (n *Node) handleStripSums(w http.ResponseWriter, r *http.Request) {
	dev, ok := n.device(r.PathValue("dev"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: device %s", ErrNodeNotFound, r.PathValue("dev")))
		return
	}
	start, err1 := strconv.ParseInt(r.URL.Query().Get("start"), 10, 64)
	count, err2 := strconv.Atoi(r.URL.Query().Get("count"))
	if err1 != nil || err2 != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, fmt.Errorf("netdev: bad sums query"))
		return
	}
	if err := rangeBounds(dev, start, count); err != nil {
		failErr(w, err)
		return
	}
	buf := make([]byte, dev.StripBytes())
	sums := make([]string, count)
	for i := 0; i < count; i++ {
		if err := dev.ReadStrip(start+int64(i), buf); err != nil {
			failErr(w, err)
			return
		}
		sums[i] = blobCRC(buf)
	}
	writeJSON(w, map[string][]string{"sums": sums})
}

// handleDeleteDevice removes a device and its backing file — the source
// reclaim step after a migration flips. Fenced (a deposed coordinator
// must not reclaim anything) and idempotent: deleting an absent device
// succeeds, so a lost ack is safely re-sent.
func (n *Node) handleDeleteDevice(w http.ResponseWriter, r *http.Request) {
	if !n.fenceOK(w, r) {
		return
	}
	name := r.PathValue("dev")
	n.mu.Lock()
	defer n.mu.Unlock()
	dev, ok := n.devs[name]
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err := dev.Close(); err != nil {
		failErr(w, err)
		return
	}
	delete(n.devs, name)
	delete(n.geo, name)
	if n.dir != "" {
		os.Remove(filepath.Join(n.dir, name+".img"))
	}
	if err := n.saveManifest(); err != nil {
		failErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDeleteBlob removes a blob (the migrated disk's stale superblock
// copy). Fenced and idempotent like device deletion.
func (n *Node) handleDeleteBlob(w http.ResponseWriter, r *http.Request) {
	if !n.fenceOK(w, r) {
		return
	}
	name := r.PathValue("name")
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.blobs[name]
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err := b.Close(); err != nil {
		failErr(w, err)
		return
	}
	delete(n.blobs, name)
	if n.dir != "" {
		os.Remove(filepath.Join(n.dir, name+".blob"))
	}
	if err := n.saveManifest(); err != nil {
		failErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleCreateBlob(w http.ResponseWriter, r *http.Request) {
	if !n.fenceOK(w, r) {
		return
	}
	name := r.PathValue("name")
	if !validName(name) {
		fail(w, http.StatusBadRequest, codeBadGeometry, fmt.Errorf("netdev: bad blob name %q", name))
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.blobs[name]; ok {
		w.WriteHeader(http.StatusNoContent) // idempotent
		return
	}
	b, err := n.newBlob(name)
	if err != nil {
		failErr(w, err)
		return
	}
	n.blobs[name] = b
	if err := n.saveManifest(); err != nil {
		failErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleReadBlob(w http.ResponseWriter, r *http.Request) {
	b, ok := n.blob(r.PathValue("name"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: blob %s", ErrNodeNotFound, r.PathValue("name")))
		return
	}
	off, err := strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	length, err := strconv.Atoi(r.URL.Query().Get("len"))
	if err != nil || length < 0 || length > 64<<20 {
		fail(w, http.StatusBadRequest, codeBadGeometry, fmt.Errorf("netdev: bad blob read length"))
		return
	}
	buf := make([]byte, length)
	nr, rerr := b.ReadAt(buf, off)
	if rerr != nil && rerr != io.EOF {
		failErr(w, rerr)
		return
	}
	buf = buf[:nr]
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(crcHeader, blobCRC(buf))
	if rerr == io.EOF {
		w.Header().Set(eofHeader, "1")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
}

func (n *Node) handleWriteBlob(w http.ResponseWriter, r *http.Request) {
	if !n.fenceOK(w, r) {
		return
	}
	b, ok := n.blob(r.PathValue("name"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: blob %s", ErrNodeNotFound, r.PathValue("name")))
		return
	}
	off, err := strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20+1))
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadFrame, fmt.Errorf("%w: %v", ErrBadFrame, err))
		return
	}
	// Metadata bytes get the same no-damaged-bytes-on-media guarantee as
	// strip frames: the declared checksum must match what arrived.
	if want := r.Header.Get(crcHeader); want != "" && want != blobCRC(body) {
		fail(w, http.StatusBadRequest, codeBadFrame,
			fmt.Errorf("%w: blob body crc %s, header says %s", ErrBadFrame, blobCRC(body), want))
		return
	}
	nw, werr := b.WriteAt(body, off)
	if werr != nil {
		failErr(w, werr)
		return
	}
	writeJSON(w, map[string]int{"written": nw})
}

func (n *Node) handleStatBlob(w http.ResponseWriter, r *http.Request) {
	b, ok := n.blob(r.PathValue("name"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: blob %s", ErrNodeNotFound, r.PathValue("name")))
		return
	}
	size, err := b.Size()
	if err != nil {
		failErr(w, err)
		return
	}
	writeJSON(w, map[string]int64{"size": size})
}

func (n *Node) handleSyncBlob(w http.ResponseWriter, r *http.Request) {
	if !n.fenceOK(w, r) {
		return
	}
	b, ok := n.blob(r.PathValue("name"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: blob %s", ErrNodeNotFound, r.PathValue("name")))
		return
	}
	if err := b.Sync(); err != nil {
		failErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleTruncateBlob(w http.ResponseWriter, r *http.Request) {
	if !n.fenceOK(w, r) {
		return
	}
	b, ok := n.blob(r.PathValue("name"))
	if !ok {
		fail(w, http.StatusNotFound, codeNotFound, fmt.Errorf("%w: blob %s", ErrNodeNotFound, r.PathValue("name")))
		return
	}
	size, err := strconv.ParseInt(r.URL.Query().Get("size"), 10, 64)
	if err != nil {
		fail(w, http.StatusBadRequest, codeBadGeometry, err)
		return
	}
	if err := b.Truncate(size); err != nil {
		failErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// validName bounds exported names to one path segment of portable
// characters, so names map safely onto files and URL paths.
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(name, ".")
}
