package netdev

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"

	"github.com/oiraid/oiraid/internal/store"
)

// ErrStaleGen reports a metadata-blob write rejected because the node
// holds a newer blob generation: another coordinator truncated the blob
// into a new stream. It wraps store.ErrStaleEpoch — both mean the same
// thing to the writer: it has been superseded and must stand down.
var ErrStaleGen = fmt.Errorf("netdev: metadata blob superseded by a newer generation: %w", store.ErrStaleEpoch)

// FenceToken carries the fencing epoch a coordinator stamps its writes
// with. One token is shared by every NodeClient of a coordinator, so a
// takeover observed on any node (a stale-epoch rejection) fences the
// whole write path at once — the token only ever moves forward.
type FenceToken struct {
	epoch atomic.Uint64
}

// Epoch returns the current fencing epoch.
func (t *FenceToken) Epoch() uint64 { return t.epoch.Load() }

// Advance raises the fencing epoch (monotonic; lower values are ignored).
func (t *FenceToken) Advance(epoch uint64) {
	for {
		cur := t.epoch.Load()
		if epoch <= cur || t.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// SetFence attaches a fencing token: every subsequent mutating request
// from this client (strip writes, blob writes/sync/truncate, creates)
// carries the token's epoch, and the node refuses it once it has
// promised a newer one. Reads stay unfenced — a deposed coordinator can
// look, it just cannot touch.
func (c *NodeClient) SetFence(t *FenceToken) { c.fence.Store(t) }

// fenceQuery returns the epoch query fragment ("" when unfenced).
func (c *NodeClient) fenceQuery() string {
	t := c.fence.Load()
	if t == nil {
		return ""
	}
	return "epoch=" + strconv.FormatUint(t.Epoch(), 10)
}

// withFence appends the fence epoch to a URL that may already carry a
// query string.
func (c *NodeClient) withFence(u string) string {
	q := c.fenceQuery()
	if q == "" {
		return u
	}
	sep := "?"
	if bytes.ContainsRune([]byte(u), '?') {
		sep = "&"
	}
	return u + sep + q
}

// FetchMetaState reads the node's metadata-plane state: fencing epoch,
// lease holder, renewal counter, and blob generations/sizes.
func (c *NodeClient) FetchMetaState() (MetaState, error) {
	var st MetaState
	err := c.getJSON("/node/v1/meta/state", &st)
	return st, err
}

// AcquireLease asks the node to promise epoch to holder. The node
// grants iff epoch is strictly above anything it has promised
// (idempotent for the same epoch+holder, so a lost grant is safely
// re-asked); otherwise the call fails with store.ErrStaleEpoch.
func (c *NodeClient) AcquireLease(epoch uint64, holder string) error {
	return c.postJSON("/node/v1/meta/lease", leaseReq{Epoch: epoch, Holder: holder}, nil)
}

// RenewLease bumps the node's renewal counter, proving the holder of
// epoch is still alive. Fails with store.ErrStaleEpoch once the node
// has promised a newer epoch — which is how a deposed leader finds out.
func (c *NodeClient) RenewLease(epoch uint64, holder string) error {
	return c.postJSON("/node/v1/meta/lease", leaseReq{Epoch: epoch, Holder: holder, Renew: true}, nil)
}

func metaBlobURL(base, name, suffix string) string {
	return base + "/node/v1/meta/blobs/" + url.PathEscape(name) + suffix
}

// MetaWriteAt writes p at off into the node's metadata blob, stamped
// (epoch, gen). The node wipes the blob first if it had missed the
// truncation that opened gen, and rejects the write entirely if it has
// promised a newer epoch or seen a newer generation.
func (c *NodeClient) MetaWriteAt(name string, p []byte, off int64, epoch, gen uint64) error {
	crc := blobCRC(p)
	q := fmt.Sprintf("?epoch=%d&gen=%d&off=%d", epoch, gen, off)
	return c.do(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, metaBlobURL(c.base, name, "")+q, bytes.NewReader(p))
		if err != nil {
			return &attemptErr{err: err}
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(crcHeader, crc)
		req.ContentLength = int64(len(p))
		resp, err := c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return c.responseErr(resp)
		}
		var out struct {
			Written int `json:"written"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&out); err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		if out.Written != len(p) {
			return &attemptErr{err: fmt.Errorf("netdev: short meta write %d of %d", out.Written, len(p)), retryable: true}
		}
		return nil
	})
}

// MetaSync fsyncs the node's metadata blob (same fencing as writes).
func (c *NodeClient) MetaSync(name string, epoch, gen uint64) error {
	q := fmt.Sprintf("?epoch=%d&gen=%d", epoch, gen)
	return c.postJSON(metaBlobURL("", name, "/sync")+q, nil, nil)
}

// MetaTruncate resizes the node's metadata blob at generation gen —
// the caller bumps gen on every truncation, which is what destroys the
// old stream on every replica that hears about it.
func (c *NodeClient) MetaTruncate(name string, size int64, epoch, gen uint64) error {
	q := fmt.Sprintf("?epoch=%d&gen=%d&size=%d", epoch, gen, size)
	return c.postJSON(metaBlobURL("", name, "/truncate")+q, nil, nil)
}

// metaReadChunk bounds one read of a replicated metadata blob.
const metaReadChunk = 4 << 20

// ReadMetaBlob fetches the node's full copy of a metadata blob along
// with its generation. The read is chunked; a generation change between
// chunks means a concurrent truncation and fails the read (transient —
// the caller re-reads the new stream).
func (c *NodeClient) ReadMetaBlob(name string) ([]byte, uint64, error) {
	var out []byte
	var gen uint64
	first := true
	for {
		chunk, g, eof, err := c.readMetaChunk(name, int64(len(out)))
		if err != nil {
			return nil, 0, err
		}
		if first {
			gen, first = g, false
		} else if g != gen {
			return nil, 0, fmt.Errorf("%w: meta blob %s generation moved %d→%d mid-read",
				store.ErrTransient, name, gen, g)
		}
		out = append(out, chunk...)
		if eof || len(chunk) == 0 {
			return out, gen, nil
		}
	}
}

func (c *NodeClient) readMetaChunk(name string, off int64) (chunk []byte, gen uint64, eof bool, err error) {
	err = c.do(func(ctx context.Context) *attemptErr {
		chunk, gen, eof = nil, 0, false
		q := fmt.Sprintf("?off=%d&len=%d", off, metaReadChunk)
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, metaBlobURL(c.base, name, "")+q, nil)
		if rerr != nil {
			return &attemptErr{err: rerr}
		}
		resp, rerr := c.hc.Do(req)
		if rerr != nil {
			return &attemptErr{err: rerr, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return c.responseErr(resp)
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, metaReadChunk+1))
		if rerr != nil {
			return &attemptErr{err: fmt.Errorf("%w: %v", ErrBadFrame, rerr), retryable: true}
		}
		if want := resp.Header.Get(crcHeader); want != "" && want != blobCRC(body) {
			return &attemptErr{
				err:       fmt.Errorf("%w: meta body crc %s, header says %s", ErrBadFrame, blobCRC(body), want),
				retryable: true,
			}
		}
		g, rerr := strconv.ParseUint(resp.Header.Get(genHeader), 10, 64)
		if rerr != nil {
			return &attemptErr{err: fmt.Errorf("%w: bad gen header: %v", ErrBadFrame, rerr), retryable: true}
		}
		isEOF := resp.Header.Get(eofHeader) == "1"
		if len(body) < metaReadChunk && !isEOF {
			return &attemptErr{err: fmt.Errorf("%w: short meta read without EOF", ErrBadFrame), retryable: true}
		}
		chunk, gen, eof = body, g, isEOF
		return nil
	})
	return chunk, gen, eof, err
}
