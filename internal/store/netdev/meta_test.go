package netdev

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/oiraid/oiraid/internal/store"
)

func metaTestClient(t *testing.T, n *Node) *NodeClient {
	t.Helper()
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(srv.Close)
	c := NewNodeClient(srv.URL, Options{Timeout: 5 * time.Second, MaxAttempts: 2})
	t.Cleanup(func() { c.Close() })
	return c
}

// TestMetaLeaseFencing drives the Paxos-style promise rule: a node
// grants strictly increasing epochs, re-grants the same epoch+holder
// idempotently, rejects anything at or below its promise, and renewals
// from a deposed holder fail with the stale-epoch sentinel.
func TestMetaLeaseFencing(t *testing.T) {
	c := metaTestClient(t, NewMemNode("n0"))

	if err := c.AcquireLease(3, "coordA"); err != nil {
		t.Fatalf("acquire epoch 3: %v", err)
	}
	// Idempotent re-ask (lost-ack replay) succeeds.
	if err := c.AcquireLease(3, "coordA"); err != nil {
		t.Fatalf("re-acquire epoch 3: %v", err)
	}
	// Same epoch, different holder: rejected.
	if err := c.AcquireLease(3, "coordB"); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("epoch-3 steal: want ErrStaleEpoch, got %v", err)
	}
	// Lower epoch: rejected.
	if err := c.AcquireLease(2, "coordB"); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("epoch-2 acquire: want ErrStaleEpoch, got %v", err)
	}
	if err := c.RenewLease(3, "coordA"); err != nil {
		t.Fatalf("renew: %v", err)
	}

	// Takeover: a higher epoch always wins.
	if err := c.AcquireLease(4, "coordB"); err != nil {
		t.Fatalf("takeover epoch 4: %v", err)
	}
	// The deposed holder's renewal now fails non-retryably.
	if err := c.RenewLease(3, "coordA"); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale renew: want ErrStaleEpoch, got %v", err)
	}

	st, err := c.FetchMetaState()
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if st.Epoch != 4 || st.Holder != "coordB" {
		t.Fatalf("state = epoch %d holder %q, want 4/coordB", st.Epoch, st.Holder)
	}
	if st.RenewSeq == 0 {
		t.Fatalf("renew seq never advanced")
	}
}

// TestMetaBlobGenWipe checks the generation rule that makes replica
// merging sound: a write at a newer gen truncates the blob first (no
// bytes from an older stream can survive), and writes at an older gen
// are rejected with ErrStaleGen.
func TestMetaBlobGenWipe(t *testing.T) {
	c := metaTestClient(t, NewMemNode("n0"))

	old := []byte("old-stream-content-that-must-die")
	if err := c.MetaWriteAt("journal", old, 0, 1, 1); err != nil {
		t.Fatalf("gen-1 write: %v", err)
	}
	if err := c.MetaSync("journal", 1, 1); err != nil {
		t.Fatalf("sync: %v", err)
	}

	// A gen-2 write at a nonzero offset arrives at a replica that never
	// saw gen 2 open: the node must wipe before applying.
	tail := []byte("new")
	if err := c.MetaWriteAt("journal", tail, 8, 1, 2); err != nil {
		t.Fatalf("gen-2 write: %v", err)
	}
	got, gen, err := c.ReadMetaBlob("journal")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if gen != 2 {
		t.Fatalf("gen = %d, want 2", gen)
	}
	want := append(make([]byte, 8), tail...)
	if !bytes.Equal(got, want) {
		t.Fatalf("blob = %q, want zeros+%q — old stream leaked through a gen bump", got, tail)
	}

	// Stale-gen writes are rejected and wrap both sentinels.
	err = c.MetaWriteAt("journal", old, 0, 1, 1)
	if !errors.Is(err, ErrStaleGen) || !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("gen-1 rewrite: want ErrStaleGen (wrapping ErrStaleEpoch), got %v", err)
	}

	// Truncate at a new gen opens an empty stream.
	if err := c.MetaTruncate("journal", 0, 1, 3); err != nil {
		t.Fatalf("truncate gen 3: %v", err)
	}
	got, gen, err = c.ReadMetaBlob("journal")
	if err != nil {
		t.Fatalf("read after truncate: %v", err)
	}
	if gen != 3 || len(got) != 0 {
		t.Fatalf("after gen-3 truncate: gen %d, %d bytes; want 3, 0", gen, len(got))
	}
}

// TestMetaEpochFencesDataPlane proves the point of fencing: once a node
// promises a newer epoch, a deposed coordinator's strip and blob writes
// bounce with ErrStaleEpoch, while an unfenced (legacy) client and all
// reads keep working.
func TestMetaEpochFencesDataPlane(t *testing.T) {
	n := NewMemNode("n0")
	cOld := metaTestClient(t, n)

	fence := &FenceToken{}
	fence.Advance(1)
	cOld.SetFence(fence)

	dev, err := cOld.CreateDevice("d0", 8, 512)
	if err != nil {
		t.Fatalf("create device: %v", err)
	}
	strip := bytes.Repeat([]byte{0xAB}, 512)
	if err := dev.WriteStrip(0, strip); err != nil {
		t.Fatalf("fenced write at current epoch: %v", err)
	}
	blob, err := cOld.CreateBlob("meta")
	if err != nil {
		t.Fatalf("create blob: %v", err)
	}
	if _, err := blob.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatalf("blob write: %v", err)
	}

	// A new coordinator takes over at epoch 2.
	if err := cOld.AcquireLease(2, "coordB"); err != nil {
		t.Fatalf("takeover: %v", err)
	}

	// The old coordinator (still stamping epoch 1) is now fenced off
	// from every mutation...
	if err := dev.WriteStrip(1, strip); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale strip write: want ErrStaleEpoch, got %v", err)
	}
	if _, err := blob.WriteAt([]byte("x"), 0); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale blob write: want ErrStaleEpoch, got %v", err)
	}
	if err := blob.Sync(); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale blob sync: want ErrStaleEpoch, got %v", err)
	}
	if err := blob.Truncate(0); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale blob truncate: want ErrStaleEpoch, got %v", err)
	}
	if _, err := cOld.CreateDevice("d1", 8, 512); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("stale create device: want ErrStaleEpoch, got %v", err)
	}

	// ...but reads still work (a deposed coordinator can drain in-flight
	// reconstruction reads safely).
	got := make([]byte, 512)
	if err := dev.ReadStrip(0, got); err != nil || !bytes.Equal(got, strip) {
		t.Fatalf("read after deposition: %v", err)
	}

	// Once the token catches up to the new epoch, writes flow again.
	fence.Advance(2)
	if err := dev.WriteStrip(1, strip); err != nil {
		t.Fatalf("write at adopted epoch: %v", err)
	}
	// Advance is monotonic: a stale Advance cannot lower the epoch.
	fence.Advance(1)
	if got := fence.Epoch(); got != 2 {
		t.Fatalf("fence epoch = %d after stale Advance, want 2", got)
	}
}

// TestMetaStatePersists restarts a dir-backed node and checks the
// promise (epoch, holder) and blob generations survive, so a rebooted
// node cannot be tricked into accepting a pre-takeover epoch.
func TestMetaStatePersists(t *testing.T) {
	dir := t.TempDir()
	n, err := NewDirNode("n0", dir)
	if err != nil {
		t.Fatalf("new node: %v", err)
	}
	c := metaTestClient(t, n)
	if err := c.AcquireLease(7, "coordA"); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	payload := []byte("durable-meta")
	if err := c.MetaWriteAt("manifest", payload, 0, 7, 4); err != nil {
		t.Fatalf("meta write: %v", err)
	}
	if err := c.MetaSync("manifest", 7, 4); err != nil {
		t.Fatalf("meta sync: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	n2, err := NewDirNode("n0", dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer n2.Close()
	c2 := metaTestClient(t, n2)
	st, err := c2.FetchMetaState()
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if st.Epoch != 7 {
		t.Fatalf("epoch %d survived restart, want 7", st.Epoch)
	}
	if bs, ok := st.Blobs["manifest"]; !ok || bs.Gen != 4 {
		t.Fatalf("manifest blob stat = %+v, want gen 4", st.Blobs)
	}
	if err := c2.AcquireLease(6, "coordB"); !errors.Is(err, store.ErrStaleEpoch) {
		t.Fatalf("pre-promise epoch after restart: want ErrStaleEpoch, got %v", err)
	}
	got, gen, err := c2.ReadMetaBlob("manifest")
	if err != nil || gen != 4 || !bytes.Equal(got, payload) {
		t.Fatalf("read after restart: %q gen %d err %v", got, gen, err)
	}
	// The state file itself is the atomic-rename artifact.
	if _, err := filepath.Glob(filepath.Join(dir, "meta.state")); err != nil {
		t.Fatalf("glob: %v", err)
	}
}
