package netdev

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"github.com/oiraid/oiraid/internal/store"
)

// NetDevice is a store.Device whose strips live on a remote storage
// node. All wire robustness — deadlines, retries, backoff, the breaker,
// the unreachable/lost classification — lives in the shared NodeClient;
// the device itself only frames payloads and verifies what comes back.
type NetDevice struct {
	c          *NodeClient
	name       string
	strips     int64
	stripBytes int
}

var _ store.Device = (*NetDevice)(nil)

// OpenDevice binds to an existing device on the node, taking geometry
// from the node's inventory.
func (c *NodeClient) OpenDevice(name string) (*NetDevice, error) {
	st, err := c.Stat()
	if err != nil {
		return nil, err
	}
	g, ok := st.Devices[name]
	if !ok {
		return nil, fmt.Errorf("%w: device %s on %s", ErrNodeNotFound, name, c.base)
	}
	return &NetDevice{c: c, name: name, strips: g.Strips, stripBytes: g.StripBytes}, nil
}

// Device binds to a device on the node without a network round trip,
// trusting the caller's geometry (a cluster manifest). The mount that
// follows verifies everything against superblocks anyway, and binding
// blind is what lets a coordinator assemble a degraded array while one
// node is unreachable.
func (c *NodeClient) Device(name string, strips int64, stripBytes int) *NetDevice {
	return &NetDevice{c: c, name: name, strips: strips, stripBytes: stripBytes}
}

// CreateDevice creates (idempotently) a device on the node and binds to
// it.
func (c *NodeClient) CreateDevice(name string, strips int64, stripBytes int) (*NetDevice, error) {
	var g DeviceStat
	err := c.postJSON(c.withFence("/node/v1/devices/"+url.PathEscape(name)),
		createDeviceReq{Strips: strips, StripBytes: stripBytes}, &g)
	if err != nil {
		return nil, err
	}
	return &NetDevice{c: c, name: name, strips: strips, stripBytes: stripBytes}, nil
}

// Strips implements store.Device.
func (d *NetDevice) Strips() int64 { return d.strips }

// StripBytes implements store.Device.
func (d *NetDevice) StripBytes() int { return d.stripBytes }

// Close implements store.Device. It does not close the shared
// NodeClient (several devices ride one client); the node-side device
// stays open for the next mount.
func (d *NetDevice) Close() error { return nil }

// Node returns the client this device rides on.
func (d *NetDevice) Node() *NodeClient { return d.c }

func (d *NetDevice) stripURL(idx int64) string {
	return d.c.base + "/node/v1/devices/" + url.PathEscape(d.name) + "/strips/" + strconv.FormatInt(idx, 10)
}

// ReadStrip implements store.Device: GET the strip, decode and verify
// the frame, copy the payload out. A torn or corrupted response fails
// frame validation and is retried as a wire fault.
func (d *NetDevice) ReadStrip(idx int64, p []byte) error {
	if idx < 0 || idx >= d.strips {
		return fmt.Errorf("%w: strip %d of %d", store.ErrStripOutOfRange, idx, d.strips)
	}
	if len(p) != d.stripBytes {
		return fmt.Errorf("%w: %d bytes, strip is %d", store.ErrShortBuffer, len(p), d.stripBytes)
	}
	return d.c.do(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.stripURL(idx), nil)
		if err != nil {
			return &attemptErr{err: err}
		}
		resp, err := d.c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return d.c.responseErr(resp)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, int64(FrameHeaderLen+d.stripBytes)+1))
		if err != nil {
			return &attemptErr{err: fmt.Errorf("%w: %v", ErrBadFrame, err), retryable: true}
		}
		fr, err := DecodeFrame(body, d.stripBytes)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		if fr.Op != OpRead || fr.Strip != idx || len(fr.Payload) != d.stripBytes {
			return &attemptErr{
				err:       fmt.Errorf("%w: response frame op=%d strip=%d len=%d, want op=%d strip=%d len=%d", ErrBadFrame, fr.Op, fr.Strip, len(fr.Payload), OpRead, idx, d.stripBytes),
				retryable: true,
			}
		}
		copy(p, fr.Payload)
		return nil
	})
}

// WriteStrip implements store.Device: PUT the strip inside a checksummed
// frame. Strip writes are idempotent, so a write whose ack was lost (an
// asymmetric partition: the node executed it, the response never came
// back) is safely re-sent until acknowledged.
func (d *NetDevice) WriteStrip(idx int64, p []byte) error {
	if idx < 0 || idx >= d.strips {
		return fmt.Errorf("%w: strip %d of %d", store.ErrStripOutOfRange, idx, d.strips)
	}
	if len(p) != d.stripBytes {
		return fmt.Errorf("%w: %d bytes, strip is %d", store.ErrShortBuffer, len(p), d.stripBytes)
	}
	frame := EncodeFrame(OpWrite, idx, p)
	return d.c.do(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, d.c.withFence(d.stripURL(idx)), bytes.NewReader(frame))
		if err != nil {
			return &attemptErr{err: err}
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.ContentLength = int64(len(frame))
		resp, err := d.c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusNoContent {
			return d.c.responseErr(resp)
		}
		return nil
	})
}

func (d *NetDevice) rangeURL(query string) string {
	return d.c.base + "/node/v1/devices/" + url.PathEscape(d.name) + "/range?" + query
}

// ReadStripRange reads count consecutive strips starting at start in one
// request, returning the concatenated payload. The bulk read half of
// strip migration: one round trip instead of count.
func (d *NetDevice) ReadStripRange(start int64, count int) ([]byte, error) {
	if start < 0 || count <= 0 || start+int64(count) > d.strips {
		return nil, fmt.Errorf("%w: range [%d,%d) of %d strips", store.ErrStripOutOfRange, start, start+int64(count), d.strips)
	}
	want := count * d.stripBytes
	var out []byte
	err := d.c.do(func(ctx context.Context) *attemptErr {
		q := "start=" + strconv.FormatInt(start, 10) + "&count=" + strconv.Itoa(count)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.rangeURL(q), nil)
		if err != nil {
			return &attemptErr{err: err}
		}
		resp, err := d.c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return d.c.responseErr(resp)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, int64(want)+1))
		if err != nil {
			return &attemptErr{err: fmt.Errorf("%w: %v", ErrBadFrame, err), retryable: true}
		}
		if len(body) != want {
			return &attemptErr{err: fmt.Errorf("%w: %d range bytes, want %d", ErrBadFrame, len(body), want), retryable: true}
		}
		if crc := resp.Header.Get(crcHeader); crc != "" && crc != blobCRC(body) {
			return &attemptErr{err: fmt.Errorf("%w: range body crc %s, header says %s", ErrBadFrame, blobCRC(body), crc), retryable: true}
		}
		out = body
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteStripRange writes len(p)/StripBytes consecutive strips starting
// at start in one request. Fenced: the node rejects it with
// store.ErrStaleEpoch once a newer coordinator holds the lease, which is
// what keeps a deposed coordinator's migration copies off the media.
// Idempotent, so lost acks are re-sent.
func (d *NetDevice) WriteStripRange(start int64, p []byte) error {
	if len(p) == 0 || len(p)%d.stripBytes != 0 {
		return fmt.Errorf("%w: %d bytes, strip is %d", store.ErrShortBuffer, len(p), d.stripBytes)
	}
	count := int64(len(p) / d.stripBytes)
	if start < 0 || start+count > d.strips {
		return fmt.Errorf("%w: range [%d,%d) of %d strips", store.ErrStripOutOfRange, start, start+count, d.strips)
	}
	crc := blobCRC(p)
	return d.c.do(func(ctx context.Context) *attemptErr {
		u := d.c.withFence(d.rangeURL("start=" + strconv.FormatInt(start, 10)))
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, u, bytes.NewReader(p))
		if err != nil {
			return &attemptErr{err: err}
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(crcHeader, crc)
		req.ContentLength = int64(len(p))
		resp, err := d.c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusNoContent {
			return d.c.responseErr(resp)
		}
		return nil
	})
}

// StripSums fetches per-strip CRC-32C checksums for a range — how a
// resuming migration verifies its already-committed prefix without
// moving the data again.
func (d *NetDevice) StripSums(start int64, count int) ([]string, error) {
	if start < 0 || count <= 0 || start+int64(count) > d.strips {
		return nil, fmt.Errorf("%w: range [%d,%d) of %d strips", store.ErrStripOutOfRange, start, start+int64(count), d.strips)
	}
	var out struct {
		Sums []string `json:"sums"`
	}
	q := "start=" + strconv.FormatInt(start, 10) + "&count=" + strconv.Itoa(count)
	if err := d.c.getJSON("/node/v1/devices/"+url.PathEscape(d.name)+"/sums?"+q, &out); err != nil {
		return nil, err
	}
	if len(out.Sums) != count {
		return nil, fmt.Errorf("%w: %d sums for %d strips", ErrBadFrame, len(out.Sums), count)
	}
	return out.Sums, nil
}

// StripCRC is the checksum StripSums speaks, computed locally — compare
// against a fetched sum to verify a copied strip.
func StripCRC(p []byte) string { return blobCRC(p) }

// DeleteDevice removes a device from the node (fenced, idempotent) —
// the source-reclaim step after a migration flips placement.
func (c *NodeClient) DeleteDevice(name string) error {
	return c.deleteReq(c.withFence("/node/v1/devices/" + url.PathEscape(name)))
}

// DeleteBlob removes a blob from the node (fenced, idempotent).
func (c *NodeClient) DeleteBlob(name string) error {
	return c.deleteReq(c.withFence("/node/v1/blobs/" + url.PathEscape(name)))
}

func (c *NodeClient) deleteReq(path string) error {
	return c.do(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+path, nil)
		if err != nil {
			return &attemptErr{err: err}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusNoContent {
			return c.responseErr(resp)
		}
		return nil
	})
}

// NetBlob is a store.Blob on a remote storage node: the substrate the
// coordinator writes per-disk superblocks through. Reads and writes
// carry a CRC-32C header so metadata crossing the wire gets the same
// torn-bytes detection as strip frames.
type NetBlob struct {
	c    *NodeClient
	name string
}

var _ store.Blob = (*NetBlob)(nil)

// Blob binds to a blob on the node without a network round trip (see
// Device).
func (c *NodeClient) Blob(name string) *NetBlob {
	return &NetBlob{c: c, name: name}
}

// OpenBlob binds to an existing blob on the node.
func (c *NodeClient) OpenBlob(name string) (*NetBlob, error) {
	st, err := c.Stat()
	if err != nil {
		return nil, err
	}
	if _, ok := st.Blobs[name]; !ok {
		return nil, fmt.Errorf("%w: blob %s on %s", ErrNodeNotFound, name, c.base)
	}
	return &NetBlob{c: c, name: name}, nil
}

// CreateBlob creates (idempotently) a blob on the node and binds to it.
func (c *NodeClient) CreateBlob(name string) (*NetBlob, error) {
	if err := c.postJSON(c.withFence("/node/v1/blobs/"+url.PathEscape(name)), nil, nil); err != nil {
		return nil, err
	}
	return &NetBlob{c: c, name: name}, nil
}

func (b *NetBlob) url(suffix, query string) string {
	u := b.c.base + "/node/v1/blobs/" + url.PathEscape(b.name) + suffix
	if query != "" {
		u += "?" + query
	}
	return u
}

// ReadAt implements store.Blob with os.File semantics: a read crossing
// the end returns the available prefix and io.EOF.
func (b *NetBlob) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: %d", store.ErrNegativeOffset, off)
	}
	var n int
	var eof bool
	err := b.c.do(func(ctx context.Context) *attemptErr {
		n, eof = 0, false
		q := "off=" + strconv.FormatInt(off, 10) + "&len=" + strconv.Itoa(len(p))
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url("", q), nil)
		if err != nil {
			return &attemptErr{err: err}
		}
		resp, err := b.c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return b.c.responseErr(resp)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, int64(len(p))+1))
		if err != nil {
			return &attemptErr{err: fmt.Errorf("%w: %v", ErrBadFrame, err), retryable: true}
		}
		if want := resp.Header.Get(crcHeader); want != "" && want != blobCRC(body) {
			return &attemptErr{
				err:       fmt.Errorf("%w: blob body crc %s, header says %s", ErrBadFrame, blobCRC(body), want),
				retryable: true,
			}
		}
		if len(body) > len(p) {
			return &attemptErr{err: fmt.Errorf("%w: %d bytes for a %d-byte read", ErrBadFrame, len(body), len(p)), retryable: true}
		}
		n = copy(p, body)
		eof = resp.Header.Get(eofHeader) == "1"
		// A short body without the EOF marker is a torn response: the
		// node always returns either the full requested range or a
		// prefix explicitly marked EOF.
		if n < len(p) && !eof {
			return &attemptErr{err: fmt.Errorf("%w: short blob read %d of %d without EOF", ErrBadFrame, n, len(p)), retryable: true}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements store.Blob. Idempotent, so lost acks are re-sent.
func (b *NetBlob) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: %d", store.ErrNegativeOffset, off)
	}
	crc := blobCRC(p)
	var written int
	err := b.c.do(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, b.c.withFence(b.url("", "off="+strconv.FormatInt(off, 10))), bytes.NewReader(p))
		if err != nil {
			return &attemptErr{err: err}
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(crcHeader, crc)
		req.ContentLength = int64(len(p))
		resp, err := b.c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return b.c.responseErr(resp)
		}
		var out struct {
			Written int `json:"written"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&out); err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		written = out.Written
		return nil
	})
	if err != nil {
		return 0, err
	}
	if written != len(p) {
		return written, fmt.Errorf("netdev: short blob write %d of %d", written, len(p))
	}
	return written, nil
}

// Sync implements store.Blob: the node fsyncs the backing file before
// acknowledging, preserving the written→durable barrier across the wire.
func (b *NetBlob) Sync() error {
	return b.c.postJSON(b.c.withFence("/node/v1/blobs/"+url.PathEscape(b.name)+"/sync"), nil, nil)
}

// Size implements store.Blob.
func (b *NetBlob) Size() (int64, error) {
	var out struct {
		Size int64 `json:"size"`
	}
	if err := b.c.getJSON("/node/v1/blobs/"+url.PathEscape(b.name)+"/stat", &out); err != nil {
		return 0, err
	}
	return out.Size, nil
}

// Truncate implements store.Blob.
func (b *NetBlob) Truncate(size int64) error {
	return b.c.postJSON(b.c.withFence("/node/v1/blobs/"+url.PathEscape(b.name)+"/truncate?size="+strconv.FormatInt(size, 10)), nil, nil)
}

// Close implements store.Blob; the node-side blob stays open.
func (b *NetBlob) Close() error { return nil }
