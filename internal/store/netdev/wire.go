// Package netdev is the network plane of the data path: it exports local
// strip devices and metadata blobs from a *storage node* over HTTP, and
// implements store.Device / store.Blob clients that a coordinator mounts
// an array across. The package is built robustness-first:
//
//   - Every strip payload crosses the wire inside a checksummed frame
//     (EncodeFrame/DecodeFrame), so a torn or bit-flipped response is
//     detected at the codec and retried instead of being written into the
//     array as data.
//   - NodeClient bounds every operation with a per-attempt deadline and a
//     per-op retry budget (full-jitter backoff), gates attempts through a
//     per-node circuit breaker, and probes an unreachable node in the
//     background until it answers again.
//   - Unreachability is classified by a grace window: within it the
//     client returns store.ErrUnreachable (transient — the engine
//     reconstructs reads around the node and retries writes); once the
//     window elapses the node is declared lost and errors become
//     store.ErrPermanent, which drives the existing evict→spare→rebuild
//     heal path.
package netdev

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame ops. A frame carries one strip payload in either direction: the
// node's response to a strip read, or the client's strip-write request
// body. Probe and stat traffic is plain HTTP/JSON — only bulk strip data
// gets the binary framing (and its checksum).
const (
	// OpRead marks a strip-read response frame (node → client).
	OpRead = 0x01
	// OpWrite marks a strip-write request frame (client → node).
	OpWrite = 0x02
)

// Frame layout (big endian):
//
//	0  4  magic "oSTP"
//	4  1  version (1)
//	5  1  op
//	6  2  reserved (zero)
//	8  8  strip index
//	16 4  payload length
//	20 4  CRC-32C of payload
//	24 …  payload
const (
	frameVersion = 1
	// FrameHeaderLen is the fixed frame header size in bytes.
	FrameHeaderLen = 24
)

var frameMagic = [4]byte{'o', 'S', 'T', 'P'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame reports a strip-transport frame that failed validation:
// short or oversized, wrong magic or version, a length field that
// disagrees with the body, or a payload checksum mismatch. On a response
// it means the bytes were torn or corrupted in flight and the operation
// is retried; on a request the node refuses the write, so damaged bytes
// never reach media.
var ErrBadFrame = errors.New("netdev: bad strip-transport frame")

// Frame is one decoded strip-transport frame.
type Frame struct {
	Op      byte
	Strip   int64
	Payload []byte
}

// EncodeFrame wraps payload in a checksummed frame.
func EncodeFrame(op byte, strip int64, payload []byte) []byte {
	b := make([]byte, FrameHeaderLen+len(payload))
	copy(b[0:4], frameMagic[:])
	b[4] = frameVersion
	b[5] = op
	binary.BigEndian.PutUint64(b[8:16], uint64(strip))
	binary.BigEndian.PutUint32(b[16:20], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[20:24], crc32.Checksum(payload, castagnoli))
	copy(b[FrameHeaderLen:], payload)
	return b
}

// DecodeFrame parses and validates a frame. maxPayload bounds the
// declared payload length (a strip size, typically), so a corrupted
// length field cannot make the caller trust an absurd allocation. The
// returned payload aliases b.
func DecodeFrame(b []byte, maxPayload int) (Frame, error) {
	var fr Frame
	if len(b) < FrameHeaderLen {
		return fr, fmt.Errorf("%w: %d bytes, header is %d", ErrBadFrame, len(b), FrameHeaderLen)
	}
	if [4]byte(b[0:4]) != frameMagic {
		return fr, fmt.Errorf("%w: bad magic %q", ErrBadFrame, b[0:4])
	}
	if b[4] != frameVersion {
		return fr, fmt.Errorf("%w: version %d, want %d", ErrBadFrame, b[4], frameVersion)
	}
	if b[6] != 0 || b[7] != 0 {
		return fr, fmt.Errorf("%w: reserved bytes set", ErrBadFrame)
	}
	length := binary.BigEndian.Uint32(b[16:20])
	if maxPayload >= 0 && length > uint32(maxPayload) {
		return fr, fmt.Errorf("%w: payload %d exceeds bound %d", ErrBadFrame, length, maxPayload)
	}
	if int64(len(b)-FrameHeaderLen) != int64(length) {
		return fr, fmt.Errorf("%w: body %d bytes, header declares %d", ErrBadFrame, len(b)-FrameHeaderLen, length)
	}
	payload := b[FrameHeaderLen:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(b[20:24]); got != want {
		return fr, fmt.Errorf("%w: payload crc %08x, header says %08x", ErrBadFrame, got, want)
	}
	fr.Op = b[5]
	fr.Strip = int64(binary.BigEndian.Uint64(b[8:16]))
	fr.Payload = payload
	return fr, nil
}

// blobCRC is the integrity checksum carried in the X-Oiraid-Crc header
// of blob reads and writes, covering exactly the transferred bytes.
func blobCRC(p []byte) string {
	return fmt.Sprintf("%08x", crc32.Checksum(p, castagnoli))
}
