package netdev

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oiraid/oiraid/internal/store"
)

// fastOpts is a client tuned for test speed: tight timeouts, quick
// breaker, quick probes.
func fastOpts() Options {
	return Options{
		Timeout:          500 * time.Millisecond,
		MaxAttempts:      3,
		BaseDelay:        time.Millisecond,
		MaxDelay:         5 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
		ProbeInterval:    20 * time.Millisecond,
		Seed:             1,
	}
}

func startNode(t *testing.T, id string) (*Node, *httptest.Server) {
	t.Helper()
	n := NewMemNode(id)
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(srv.Close)
	return n, srv
}

func TestNetDeviceRoundTrip(t *testing.T) {
	_, srv := startNode(t, "n0")
	c := NewNodeClient(srv.URL, fastOpts())
	defer c.Close()

	dev, err := c.CreateDevice("d0", 16, 512)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if dev.Strips() != 16 || dev.StripBytes() != 512 {
		t.Fatalf("geometry %dx%d", dev.Strips(), dev.StripBytes())
	}
	// Idempotent re-create with the same geometry.
	if _, err := c.CreateDevice("d0", 16, 512); err != nil {
		t.Fatalf("re-create: %v", err)
	}
	// Conflicting geometry is refused.
	if _, err := c.CreateDevice("d0", 8, 512); !errors.Is(err, store.ErrBadGeometry) {
		t.Fatalf("conflicting create: %v, want ErrBadGeometry", err)
	}

	w := bytes.Repeat([]byte{0x5A}, 512)
	for i := int64(0); i < 16; i++ {
		w[0] = byte(i)
		if err := dev.WriteStrip(i, w); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	r := make([]byte, 512)
	for i := int64(0); i < 16; i++ {
		if err := dev.ReadStrip(i, r); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if r[0] != byte(i) || r[1] != 0x5A {
			t.Fatalf("strip %d content %x %x", i, r[0], r[1])
		}
	}

	// Reopen by inventory.
	dev2, err := c.OpenDevice("d0")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := dev2.ReadStrip(3, r); err != nil || r[0] != 3 {
		t.Fatalf("reopened read: %v %x", err, r[0])
	}
	if _, err := c.OpenDevice("nope"); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("open missing: %v", err)
	}

	// Sentinel taxonomy across the wire.
	if err := dev.ReadStrip(99, r); !errors.Is(err, store.ErrStripOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if err := dev.WriteStrip(0, r[:10]); !errors.Is(err, store.ErrShortBuffer) {
		t.Fatalf("short buffer: %v", err)
	}
}

func TestNetBlobRoundTrip(t *testing.T) {
	_, srv := startNode(t, "n0")
	c := NewNodeClient(srv.URL, fastOpts())
	defer c.Close()

	b, err := c.CreateBlob("sb0")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.CreateBlob("sb0"); err != nil {
		t.Fatalf("idempotent create: %v", err)
	}
	if n, err := b.WriteAt([]byte("hello metadata plane"), 5); err != nil || n != 20 {
		t.Fatalf("write: %d %v", n, err)
	}
	if err := b.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if size, err := b.Size(); err != nil || size != 25 {
		t.Fatalf("size: %d %v", size, err)
	}
	buf := make([]byte, 20)
	if n, err := b.ReadAt(buf, 5); err != nil || n != 20 || string(buf) != "hello metadata plane" {
		t.Fatalf("read: %d %v %q", n, err, buf)
	}
	// EOF semantics: prefix + io.EOF, exactly like os.File / MemBlob.
	n, err := b.ReadAt(buf, 15)
	if err != io.EOF || n != 10 {
		t.Fatalf("read past end: n=%d err=%v, want 10, EOF", n, err)
	}
	if string(buf[:n]) != "data plane" {
		t.Fatalf("tail content %q", buf[:n])
	}
	if n, err := b.ReadAt(buf, 100); err != io.EOF || n != 0 {
		t.Fatalf("read far past end: n=%d err=%v", n, err)
	}
	if err := b.Truncate(5); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if size, _ := b.Size(); size != 5 {
		t.Fatalf("size after truncate %d", size)
	}
	if _, err := c.OpenBlob("missing"); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("open missing: %v", err)
	}
}

func TestTornResponsesAreRetried(t *testing.T) {
	_, srv := startNode(t, "n0")
	ft := NewFaultTransport(nil, 7)
	opts := fastOpts()
	opts.Transport = ft
	c := NewNodeClient(srv.URL, opts)
	defer c.Close()

	dev, err := c.CreateDevice("d0", 8, 1024)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	w := bytes.Repeat([]byte{0xC3}, 1024)
	if err := dev.WriteStrip(0, w); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	// Every second response arrives truncated; the frame checksum must
	// catch each one and the retry loop absorb it.
	ft.SetTorn(2)
	r := make([]byte, 1024)
	for i := 0; i < 10; i++ {
		if err := dev.ReadStrip(0, r); err != nil {
			t.Fatalf("read %d under torn responses: %v", i, err)
		}
		if !bytes.Equal(r, w) {
			t.Fatalf("read %d returned damaged data", i)
		}
	}
	if got := c.Stats().Retries; got == 0 {
		t.Fatalf("no retries recorded under torn responses")
	}
}

func TestPartitionUnreachableThenRecovery(t *testing.T) {
	_, srv := startNode(t, "n0")
	ft := NewFaultTransport(nil, 3)
	opts := fastOpts()
	var downs, ups atomic.Int64
	opts.OnDown = func() { downs.Add(1) }
	opts.OnUp = func() { ups.Add(1) }
	opts.Transport = ft
	c := NewNodeClient(srv.URL, opts)
	defer c.Close()

	dev, err := c.CreateDevice("d0", 8, 256)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	buf := make([]byte, 256)
	if err := dev.WriteStrip(1, buf); err != nil {
		t.Fatalf("write: %v", err)
	}

	ft.SetPartition(PartDrop)
	err = dev.ReadStrip(1, buf)
	if !errors.Is(err, store.ErrUnreachable) {
		t.Fatalf("partitioned read: %v, want ErrUnreachable", err)
	}
	// ErrUnreachable is transient (retry layers back off) but the
	// classification matters: it must NOT be permanent.
	if !store.IsTransient(err) || errors.Is(err, store.ErrPermanent) {
		t.Fatalf("unreachable classified wrong: %v", err)
	}
	if !c.Down() {
		t.Fatalf("client not marked down")
	}

	// The breaker opens under sustained failure: later ops fail fast.
	for i := 0; i < 6; i++ {
		dev.ReadStrip(1, buf)
	}
	if c.Stats().BreakerFastFails == 0 {
		t.Fatalf("breaker never fast-failed under partition")
	}

	// Lift the partition: the background prober notices and OnUp fires
	// without any foreground traffic.
	ft.SetPartition(PartNone)
	deadline := time.Now().Add(5 * time.Second)
	for c.Down() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.Down() {
		t.Fatalf("client still down after partition lifted")
	}
	if err := dev.ReadStrip(1, buf); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if downs.Load() == 0 || ups.Load() == 0 {
		t.Fatalf("callbacks: downs=%d ups=%d", downs.Load(), ups.Load())
	}
}

func TestAsymmetricPartitionWritesLandUnacked(t *testing.T) {
	n, srv := startNode(t, "n0")
	ft := NewFaultTransport(nil, 5)
	opts := fastOpts()
	opts.Transport = ft
	c := NewNodeClient(srv.URL, opts)
	defer c.Close()

	dev, err := c.CreateDevice("d0", 4, 128)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	w := bytes.Repeat([]byte{0x11}, 128)

	ft.SetPartition(PartAsym)
	if err := dev.WriteStrip(2, w); !errors.Is(err, store.ErrUnreachable) {
		t.Fatalf("asym write: %v, want ErrUnreachable", err)
	}
	// The write executed server-side even though the client saw failure.
	inner, _ := n.device("d0")
	got := make([]byte, 128)
	if err := inner.ReadStrip(2, got); err != nil {
		t.Fatalf("server-side read: %v", err)
	}
	if !bytes.Equal(got, w) {
		t.Fatalf("write did not land server-side")
	}
	// Idempotent re-send after the partition heals converges to acked.
	ft.SetPartition(PartNone)
	if err := dev.WriteStrip(2, w); err != nil {
		t.Fatalf("re-send: %v", err)
	}
}

func TestGraceWindowEscalatesToLost(t *testing.T) {
	_, srv := startNode(t, "n0")
	ft := NewFaultTransport(nil, 9)
	opts := fastOpts()
	opts.Grace = 150 * time.Millisecond
	opts.Transport = ft
	c := NewNodeClient(srv.URL, opts)
	defer c.Close()

	dev, err := c.CreateDevice("d0", 4, 128)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	buf := make([]byte, 128)

	ft.SetPartition(PartDrop)
	if err := dev.ReadStrip(0, buf); !errors.Is(err, store.ErrUnreachable) {
		t.Fatalf("within grace: %v, want ErrUnreachable", err)
	}
	if c.Lost() {
		t.Fatalf("lost before grace elapsed")
	}
	time.Sleep(200 * time.Millisecond)
	err = dev.ReadStrip(0, buf)
	if !errors.Is(err, ErrNodeLost) || !errors.Is(err, store.ErrPermanent) {
		t.Fatalf("past grace: %v, want ErrNodeLost wrapping ErrPermanent", err)
	}
	if !c.Lost() {
		t.Fatalf("client not marked lost")
	}
	// Lost is terminal: even with the partition lifted, the node stays
	// dead to this client (its disks are being rebuilt elsewhere).
	ft.SetPartition(PartNone)
	time.Sleep(50 * time.Millisecond)
	if err := dev.ReadStrip(0, buf); !errors.Is(err, ErrNodeLost) {
		t.Fatalf("after lift: %v, want ErrNodeLost", err)
	}
}

func TestWrongNodeIdentityIsPermanent(t *testing.T) {
	_, srv := startNode(t, "actually-n1")
	opts := fastOpts()
	opts.ExpectID = "n0"
	c := NewNodeClient(srv.URL, opts)
	defer c.Close()
	if err := c.Ping(); !errors.Is(err, ErrWrongNode) || !errors.Is(err, store.ErrPermanent) {
		t.Fatalf("wrong node: %v, want ErrWrongNode (permanent)", err)
	}
}

func TestPermanentMediaErrorPassesThrough(t *testing.T) {
	n, srv := startNode(t, "n0")
	// A reachable node whose local disk is dying: the client must see a
	// permanent DEVICE error (evict that disk), not unreachability.
	inner, _ := store.NewMemDevice(8, 256)
	fd := store.NewFaultDevice(inner, store.FaultConfig{Seed: 1})
	fd.FailNow()
	n.AddDevice("sick", fd)

	c := NewNodeClient(srv.URL, fastOpts())
	defer c.Close()
	dev, err := c.OpenDevice("sick")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	buf := make([]byte, 256)
	err = dev.ReadStrip(0, buf)
	if !errors.Is(err, store.ErrPermanent) {
		t.Fatalf("sick disk: %v, want ErrPermanent", err)
	}
	if errors.Is(err, store.ErrUnreachable) || c.Down() {
		t.Fatalf("media failure misclassified as network failure (down=%v)", c.Down())
	}
}

func TestNodeRestartKeepsMedia(t *testing.T) {
	n := NewMemNode("n0")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	hsrv := &http.Server{Handler: n.Handler()}
	go hsrv.Serve(l)

	opts := fastOpts()
	c := NewNodeClient("http://"+addr, opts)
	defer c.Close()
	dev, err := c.CreateDevice("d0", 4, 128)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	w := bytes.Repeat([]byte{0x77}, 128)
	if err := dev.WriteStrip(0, w); err != nil {
		t.Fatalf("write: %v", err)
	}

	// Kill the node process (the media — the Node — survives).
	hsrv.Close()
	buf := make([]byte, 128)
	if err := dev.ReadStrip(0, buf); !errors.Is(err, store.ErrUnreachable) {
		t.Fatalf("down read: %v, want ErrUnreachable", err)
	}

	// Restart on the same address; the port was just freed by us, so
	// retry binding briefly.
	var l2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		l2, err = net.Listen("tcp", addr)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	hsrv2 := &http.Server{Handler: n.Handler()}
	go hsrv2.Serve(l2)
	defer hsrv2.Close()

	deadline = time.Now().Add(5 * time.Second)
	for c.Down() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if err := dev.ReadStrip(0, buf); err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if !bytes.Equal(buf, w) {
		t.Fatalf("data lost across restart")
	}
}

func TestClientCloseDrains(t *testing.T) {
	_, srv := startNode(t, "n0")
	ft := NewFaultTransport(nil, 2)
	opts := fastOpts()
	released := make(chan struct{})
	opts.OnDown = func() { <-released }
	opts.Transport = ft
	c := NewNodeClient(srv.URL, opts)

	dev, err := c.CreateDevice("d0", 4, 64)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	ft.SetPartition(PartDrop)
	buf := make([]byte, 64)
	dev.ReadStrip(0, buf) // starts prober + OnDown callback

	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatalf("Close returned while OnDown callback still running")
	case <-time.After(100 * time.Millisecond):
	}
	close(released)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatalf("Close did not return after callbacks drained")
	}
	if err := dev.ReadStrip(0, buf); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("op after close: %v, want ErrClosed", err)
	}
}

func TestDirNodePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	n1, err := NewDirNode("n0", dir)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	srv := httptest.NewServer(n1.Handler())
	c := NewNodeClient(srv.URL, fastOpts())
	dev, err := c.CreateDevice("d0", 4, 128)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	w := bytes.Repeat([]byte{0x42}, 128)
	if err := dev.WriteStrip(1, w); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := c.CreateBlob("sb0"); err != nil {
		t.Fatalf("blob: %v", err)
	}
	c.Close()
	srv.Close()
	if err := n1.Close(); err != nil {
		t.Fatalf("close node: %v", err)
	}

	n2, err := NewDirNode("n0", dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer n2.Close()
	srv2 := httptest.NewServer(n2.Handler())
	defer srv2.Close()
	c2 := NewNodeClient(srv2.URL, fastOpts())
	defer c2.Close()
	dev2, err := c2.OpenDevice("d0")
	if err != nil {
		t.Fatalf("open after reopen: %v", err)
	}
	buf := make([]byte, 128)
	if err := dev2.ReadStrip(1, buf); err != nil || !bytes.Equal(buf, w) {
		t.Fatalf("data across reopen: %v", err)
	}
	if _, err := c2.OpenBlob("sb0"); err != nil {
		t.Fatalf("blob across reopen: %v", err)
	}
}
