package netdev

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// PartitionMode selects how a FaultTransport partitions the link.
type PartitionMode int32

const (
	// PartNone passes traffic through.
	PartNone PartitionMode = iota
	// PartDrop is a full partition: requests never reach the node.
	PartDrop
	// PartAsym is an asymmetric partition: the request reaches the node
	// and executes, but the response is dropped on the way back — the
	// client sees a failure for work that actually happened. This is the
	// case that distinguishes "acked" from "attempted": only idempotent,
	// retry-until-acked writes stay exact under it.
	PartAsym
)

// errPartition marks failures injected by the fault transport. It
// deliberately looks like any other transport error to the client.
var errPartition = errors.New("netdev: injected partition")

// IsInjectedPartition reports whether err came from a FaultTransport
// (test assertions only).
func IsInjectedPartition(err error) bool { return errors.Is(err, errPartition) }

// FaultTransport is an http.RoundTripper that injects network faults
// between a NodeClient and its node: full and asymmetric partitions,
// link delay, and torn (truncated) responses. All modes are runtime-
// switchable and safe for concurrent use; the torn-response draw is
// seeded so sweeps are reproducible.
type FaultTransport struct {
	inner http.RoundTripper

	mu        sync.Mutex
	rng       *rand.Rand
	mode      PartitionMode
	delay     time.Duration
	tornEvery int64 // every Nth response is torn (0: off)
	count     int64
}

// NewFaultTransport wraps inner (nil: http.DefaultTransport) with the
// fault layer, drawing from a seeded stream.
func NewFaultTransport(inner http.RoundTripper, seed int64) *FaultTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &FaultTransport{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetPartition switches the partition mode.
func (t *FaultTransport) SetPartition(mode PartitionMode) {
	t.mu.Lock()
	t.mode = mode
	t.mu.Unlock()
}

// SetDelay adds a fixed delay to every round trip (a slow link).
func (t *FaultTransport) SetDelay(d time.Duration) {
	t.mu.Lock()
	t.delay = d
	t.mu.Unlock()
}

// SetTorn makes every nth response arrive truncated (0 disables). The
// truncation point is drawn from the seeded stream.
// CloseIdleConnections forwards to the wrapped transport so a client
// Close through a fault transport still reaps idle connections.
func (t *FaultTransport) CloseIdleConnections() {
	if c, ok := t.inner.(interface{ CloseIdleConnections() }); ok {
		c.CloseIdleConnections()
	}
}

func (t *FaultTransport) SetTorn(n int64) {
	t.mu.Lock()
	t.tornEvery = n
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	mode := t.mode
	delay := t.delay
	t.count++
	torn := t.tornEvery > 0 && t.count%t.tornEvery == 0
	var tornFrac float64
	if torn {
		tornFrac = t.rng.Float64()
	}
	t.mu.Unlock()

	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}

	if mode == PartDrop {
		// The request never reaches the node. Consume the body as a real
		// failed connection would, so retries can re-send it.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: request dropped", errPartition)
	}

	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	if mode == PartAsym {
		// The node executed the request; the client never learns. Drain
		// the body so the connection is reusable, then report failure.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, fmt.Errorf("%w: response dropped", errPartition)
	}

	if torn && resp.Body != nil && resp.ContentLength > 0 {
		// Truncate the body partway while the headers still declare the
		// full length: exactly what a connection cut mid-response looks
		// like above the transport. The codec's checksums must catch it.
		keep := int64(tornFrac * float64(resp.ContentLength))
		if keep >= resp.ContentLength {
			keep = resp.ContentLength - 1
		}
		if keep < 0 {
			keep = 0
		}
		inner := resp.Body
		resp.Body = &tornBody{r: io.LimitReader(inner, keep), c: inner}
	}
	return resp, nil
}

// tornBody serves a truncated prefix of the real body, closing the
// underlying connection body when done.
type tornBody struct {
	r io.Reader
	c io.Closer
}

func (b *tornBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *tornBody) Close() error               { return b.c.Close() }
