package netdev

import (
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// reportLatency attaches p50/p99 per-op latency to the benchmark result
// alongside the ns/op mean, so BENCH_netdev.json captures tails.
func reportLatency(b *testing.B, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i].Nanoseconds()) / 1e6
	}
	b.ReportMetric(p(0.50), "p50-ms")
	b.ReportMetric(p(0.99), "p99-ms")
}

func benchDevice(b *testing.B, stripBytes int) *NetDevice {
	b.Helper()
	n := NewMemNode("bench")
	srv := httptest.NewServer(n.Handler())
	b.Cleanup(srv.Close)
	c := NewNodeClient(srv.URL, Options{Timeout: 10 * time.Second})
	b.Cleanup(func() { c.Close() })
	dev, err := c.CreateDevice("d0", 64, stripBytes)
	if err != nil {
		b.Fatalf("create: %v", err)
	}
	return dev
}

// BenchmarkNetdevWriteStrip measures one framed strip write over
// loopback HTTP: encode, PUT, node-side verify, ack.
func BenchmarkNetdevWriteStrip(b *testing.B) {
	const stripBytes = 64 << 10
	dev := benchDevice(b, stripBytes)
	buf := make([]byte, stripBytes)
	for i := range buf {
		buf[i] = byte(i)
	}
	lats := make([]time.Duration, 0, b.N)
	b.SetBytes(stripBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := time.Now()
		if err := dev.WriteStrip(int64(i%64), buf); err != nil {
			b.Fatalf("write: %v", err)
		}
		lats = append(lats, time.Since(t))
	}
	b.StopTimer()
	reportLatency(b, lats)
}

// BenchmarkNetdevReadStrip measures one framed strip read over loopback
// HTTP: GET, frame decode, checksum verify, copy out.
func BenchmarkNetdevReadStrip(b *testing.B) {
	const stripBytes = 64 << 10
	dev := benchDevice(b, stripBytes)
	buf := make([]byte, stripBytes)
	for i := int64(0); i < 64; i++ {
		if err := dev.WriteStrip(i, buf); err != nil {
			b.Fatalf("seed: %v", err)
		}
	}
	lats := make([]time.Duration, 0, b.N)
	b.SetBytes(stripBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := time.Now()
		if err := dev.ReadStrip(int64(i%64), buf); err != nil {
			b.Fatalf("read: %v", err)
		}
		lats = append(lats, time.Since(t))
	}
	b.StopTimer()
	reportLatency(b, lats)
}
