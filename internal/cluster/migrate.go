// Membership plane: online node add/drain/rejoin, each built on one
// primitive — a resumable, fenced strip migration that moves a healthy
// disk to a new node while the array stays online.
//
// The migration state machine:
//
//  1. Commit a MigrationRecord (src, dst, cursor=0) through the quorum
//     metadata plane. From here on the move survives coordinator death:
//     whoever mounts next finds the record and resumes.
//  2. Install a store.MirrorDevice on the disk: foreground writes land
//     on both placements, reads stay on the source, destination
//     failures go to a dirty set instead of the health monitor.
//  3. Copy cycle by cycle, paced by the engine's QoS bucket (the same
//     budget rebuilds run under, so foreground p99 stays bounded). Each
//     cycle is copied under the engine's cycle lock (a consistent
//     snapshot), shipped as one fenced bulk write, and then the cursor
//     is committed to the quorum — the resume point.
//  4. Flip under the exclusive mode lock: re-copy dirty strips (no
//     foreground writer can race now), clone the superblock to the
//     destination (both placements stay mountable at the same epoch —
//     a crash on either side of the commit mounts a healthy array),
//     commit the manifest, swap the engine device.
//  5. Reclaim the source and delete the record — in that order, so a
//     crash in between leaves a record whose finalize path re-runs the
//     (idempotent) reclaim.
//
// Every destination write and every metadata commit carries the
// coordinator's epoch: a deposed coordinator's migration parks itself
// with ErrStaleEpoch and the successor resumes from the last committed
// cursor, exactly like any other fenced write path.

package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/oiraid/oiraid/internal/engine"
	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
)

// migrateKeyPrefix namespaces migration records in the metadata
// journal's KV space; one record per disk in flight.
const migrateKeyPrefix = "migrate/"

func migrateKey(d int) string { return fmt.Sprintf("%s%02d", migrateKeyPrefix, d) }

// migrateRetryEvery is the wait between copy retries while the source
// or destination node is transiently unreachable.
const migrateRetryEvery = 50 * time.Millisecond

// MigrationRecord is the per-disk migration state committed through the
// quorum metadata plane. Cursor counts the layout cycles whose copy is
// complete and acknowledged; a successor resumes from there.
type MigrationRecord struct {
	Disk   int       `json:"disk"`
	Src    Placement `json:"src"`
	Dst    Placement `json:"dst"`
	Cursor int64     `json:"cursor"`
}

// MigrationStatus is the externally visible view of one in-flight
// migration, read straight from the committed records.
type MigrationStatus struct {
	Disk   int    `json:"disk"`
	From   string `json:"from"`
	To     string `json:"to"`
	Cursor int64  `json:"cursor"`
	Cycles int64  `json:"cycles"`
}

// MoveReport summarises a membership operation: which disks moved.
type MoveReport struct {
	Moved []int `json:"moved"`
}

// NodeInfo is one row of NodeStatus.
type NodeInfo struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	State string `json:"state"` // ok | down | lost | draining
	Disks []int  `json:"disks"`
}

// errMigrationParked reports a migration that stopped without being
// abandoned: its record stays committed and the next open resumes it.
var errMigrationParked = errors.New("cluster: migration parked, will resume at next open")

// AddNode joins a new storage node to the cluster and rebalances:
// disks migrate from the most-loaded nodes until the spread is ≤ 1.
func (c *Cluster) AddNode(spec NodeSpec) (MoveReport, error) {
	if spec.ID == "" || spec.URL == "" {
		return MoveReport{}, errors.New("cluster: add node needs an id and a url")
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()

	c.mu.Lock()
	if _, ok := c.clients[spec.ID]; ok {
		c.mu.Unlock()
		return MoveReport{}, fmt.Errorf("cluster: node %q is already a member", spec.ID)
	}
	cl := c.newClientLocked(spec)
	c.mu.Unlock()

	// The node must answer (and identify itself — ExpectID) before it
	// can hold data.
	if err := cl.Ping(); err != nil {
		cl.Close()
		return MoveReport{}, fmt.Errorf("cluster: add node %s: %w", spec.ID, err)
	}

	c.mu.Lock()
	c.manifest.Nodes = append(c.manifest.Nodes, spec)
	c.clients[spec.ID] = cl
	c.order = append(c.order, spec.ID)
	err := c.saveManifestLocked()
	if err != nil {
		c.manifest.Nodes = c.manifest.Nodes[:len(c.manifest.Nodes)-1]
		delete(c.clients, spec.ID)
		c.order = c.order[:len(c.order)-1]
	}
	c.mu.Unlock()
	if err != nil {
		cl.Close()
		return MoveReport{}, err
	}
	return c.rebalance()
}

// DrainNode migrates every disk off the node and removes it from the
// membership. The node must be reachable: draining reads its strips
// (a dead node's disks move through the heal path, not a drain).
func (c *Cluster) DrainNode(id string) (MoveReport, error) {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()

	c.mu.Lock()
	cl, ok := c.clients[id]
	if !ok {
		c.mu.Unlock()
		return MoveReport{}, fmt.Errorf("cluster: unknown node %q", id)
	}
	if len(c.order) < 2 {
		c.mu.Unlock()
		return MoveReport{}, errors.New("cluster: cannot drain the last node")
	}
	c.draining[id] = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.draining, id)
		c.mu.Unlock()
	}()
	if cl.Lost() || cl.Down() {
		return MoveReport{}, fmt.Errorf("cluster: drain %s: node unreachable (heal, not drain, moves a dead node's disks)", id)
	}

	var rep MoveReport
	for {
		disks := c.DisksOn(id)
		if len(disks) == 0 {
			break
		}
		dst, err := c.leastLoadedEligible(id)
		if err != nil {
			return rep, err
		}
		if err := c.migrateDisk(disks[0], dst); err != nil {
			return rep, err
		}
		rep.Moved = append(rep.Moved, disks[0])
	}

	// Remove from the membership. The client retires instead of closing:
	// in HA mode it may still be a metadata voter for the reign.
	c.mu.Lock()
	for i, n := range c.manifest.Nodes {
		if n.ID == id {
			c.manifest.Nodes = append(c.manifest.Nodes[:i], c.manifest.Nodes[i+1:]...)
			break
		}
	}
	for i, o := range c.order {
		if o == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	delete(c.clients, id)
	c.retired = append(c.retired, cl)
	err := c.saveManifestLocked()
	c.mu.Unlock()
	return rep, err
}

// RejoinNode brings a known node back. Inside the grace window the
// client recovers on its own and the node's disks were only
// quarantined — zero strips move. After the grace window (the node was
// declared lost and its disks healed elsewhere) the latched-dead client
// is replaced with a fresh one, stale media on the node is scrubbed,
// and rebalancing migrates the delta back — paced, like any migration.
func (c *Cluster) RejoinNode(spec NodeSpec) (MoveReport, error) {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()

	c.mu.Lock()
	old, ok := c.clients[spec.ID]
	if !ok {
		c.mu.Unlock()
		return MoveReport{}, fmt.Errorf("cluster: unknown node %q (AddNode joins new nodes)", spec.ID)
	}
	if spec.URL == "" {
		for _, n := range c.manifest.Nodes {
			if n.ID == spec.ID {
				spec.URL = n.URL
			}
		}
	}
	c.mu.Unlock()

	if !old.Lost() {
		// Inside the grace window: nothing was evicted, the probe loop
		// releases the quarantines when the node answers again.
		if len(c.DisksOn(spec.ID)) > 0 {
			return MoveReport{}, nil
		}
	} else {
		// Lost is a latch: the old client can never serve again. Replace
		// it, verify the node answers under its expected identity, and
		// let the voter (HA) point at the live client again.
		c.mu.Lock()
		cl := c.newClientLocked(spec)
		c.mu.Unlock()
		if err := cl.Ping(); err != nil {
			cl.Close()
			return MoveReport{}, fmt.Errorf("cluster: rejoin %s: %w", spec.ID, err)
		}
		c.mu.Lock()
		c.clients[spec.ID] = cl
		c.retired = append(c.retired, old)
		for i := range c.manifest.Nodes {
			if c.manifest.Nodes[i].ID == spec.ID {
				c.manifest.Nodes[i].URL = spec.URL
			}
		}
		err := c.saveManifestLocked()
		c.mu.Unlock()
		if err != nil {
			return MoveReport{}, err
		}
		if c.rep != nil {
			c.rep.setClient(spec.ID, cl)
		}
		// Whatever the node still holds from before it died is stale —
		// its placements were healed onto other nodes. Scrub it so the
		// space is usable and a later mount can never bind old media.
		c.scrubStaleMedia(spec.ID)
	}
	return c.rebalance()
}

// NodeStatus reports every member node with its reachability state and
// current disk placements.
func (c *Cluster) NodeStatus() []NodeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeInfo, 0, len(c.manifest.Nodes))
	for _, n := range c.manifest.Nodes {
		cl := c.clients[n.ID]
		state := "ok"
		switch {
		case cl == nil:
			state = "lost"
		case cl.Lost():
			state = "lost"
		case cl.Down():
			state = "down"
		case c.draining[n.ID]:
			state = "draining"
		}
		info := NodeInfo{ID: n.ID, URL: n.URL, State: state}
		for d, p := range c.manifest.Disks {
			if p.Node == n.ID {
				info.Disks = append(info.Disks, d)
			}
		}
		out = append(out, info)
	}
	return out
}

// Migrations lists the in-flight migrations from their committed
// records — the same view a successor coordinator would resume from.
func (c *Cluster) Migrations() []MigrationStatus {
	_, vals := c.Mount.Meta.Journal().KVRange(migrateKeyPrefix)
	cycles := c.Mount.Array.Cycles()
	var out []MigrationStatus
	for _, v := range vals {
		var rec MigrationRecord
		if json.Unmarshal(v, &rec) != nil {
			continue
		}
		out = append(out, MigrationStatus{
			Disk: rec.Disk, From: rec.Src.Node, To: rec.Dst.Node,
			Cursor: rec.Cursor, Cycles: cycles,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Disk < out[j].Disk })
	return out
}

// rebalance migrates disks from the most- to the least-loaded eligible
// node until the spread is ≤ 1. Caller holds memberMu.
func (c *Cluster) rebalance() (MoveReport, error) {
	var rep MoveReport
	for {
		d, dst, ok := c.nextBalanceMove()
		if !ok {
			return rep, nil
		}
		if err := c.migrateDisk(d, dst); err != nil {
			return rep, err
		}
		rep.Moved = append(rep.Moved, d)
	}
}

// nextBalanceMove picks one disk to move: from the most-loaded node
// whose disks can be read to the least-loaded node that can receive
// (reachable, not draining). Ties break by membership order; within a
// node the highest-numbered disk moves first.
func (c *Cluster) nextBalanceMove() (int, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	load := map[string]int{}
	for _, id := range c.order {
		cl := c.clients[id]
		if cl == nil || cl.Lost() || cl.Down() || c.draining[id] {
			continue
		}
		load[id] = 0
	}
	for _, p := range c.manifest.Disks {
		if _, ok := load[p.Node]; ok {
			load[p.Node]++
		}
	}
	donor, recipient := "", ""
	for _, id := range c.order {
		if _, ok := load[id]; !ok {
			continue
		}
		if donor == "" || load[id] > load[donor] {
			donor = id
		}
		if recipient == "" || load[id] < load[recipient] {
			recipient = id
		}
	}
	if donor == "" || recipient == "" || load[donor]-load[recipient] <= 1 {
		return 0, "", false
	}
	move := -1
	for d, p := range c.manifest.Disks {
		if p.Node == donor {
			move = d
		}
	}
	if move < 0 {
		return 0, "", false
	}
	return move, recipient, true
}

// leastLoadedEligible picks the reachable, non-draining node (excluding
// id) with the fewest disks.
func (c *Cluster) leastLoadedEligible(exclude string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	load := map[string]int{}
	for _, p := range c.manifest.Disks {
		load[p.Node]++
	}
	best := ""
	for _, id := range c.order {
		if id == exclude || c.draining[id] {
			continue
		}
		cl := c.clients[id]
		if cl == nil || cl.Lost() || cl.Down() {
			continue
		}
		if best == "" || load[id] < load[best] {
			best = id
		}
	}
	if best == "" {
		return "", fmt.Errorf("%w: no eligible node to migrate to", store.ErrUnreachable)
	}
	return best, nil
}

// migrateDisk commits a migration record for disk d → dstNode and runs
// it to completion. Caller holds memberMu.
func (c *Cluster) migrateDisk(d int, dstNode string) error {
	c.mu.Lock()
	if d < 0 || d >= len(c.manifest.Disks) {
		c.mu.Unlock()
		return fmt.Errorf("%w: disk %d", store.ErrNoSuchDisk, d)
	}
	src := c.manifest.Disks[d]
	c.mu.Unlock()
	if src.Node == dstNode {
		return nil
	}
	seq := c.replaceSeq.Add(1)
	rec := MigrationRecord{
		Disk: d,
		Src:  src,
		Dst: Placement{
			Node:   dstNode,
			Device: fmt.Sprintf("disk%02d-m%d", d, seq),
			Super:  fmt.Sprintf("sb%02d-m%d", d, seq),
		},
	}
	if err := c.putMigRecord(rec); err != nil {
		return err
	}
	return c.runMigration(rec)
}

// resumeMigrations picks up every committed migration record — the
// successor side of crash safety. Runs in a tracked goroutine so Open
// returns promptly; Close parks any in-flight copy via migStop.
func (c *Cluster) resumeMigrations() {
	_, vals := c.Mount.Meta.Journal().KVRange(migrateKeyPrefix)
	var recs []MigrationRecord
	for _, v := range vals {
		var rec MigrationRecord
		if json.Unmarshal(v, &rec) == nil {
			recs = append(recs, rec)
		}
	}
	if len(recs) == 0 {
		return
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Disk < recs[j].Disk })
	c.migWg.Add(1)
	go func() {
		defer c.migWg.Done()
		for _, rec := range recs {
			select {
			case <-c.migStop:
				return
			default:
			}
			if c.onMigrateResume != nil {
				c.onMigrateResume(rec)
			}
			c.memberMu.Lock()
			_ = c.runMigration(rec) // parked records stay for the next open
			c.memberMu.Unlock()
		}
	}()
}

func (c *Cluster) putMigRecord(rec MigrationRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return c.Mount.Meta.Journal().PutKV(migrateKey(rec.Disk), raw, true)
}

func (c *Cluster) deleteMigRecord(d int) error {
	return c.Mount.Meta.Journal().DeleteKV(migrateKey(d), true)
}

func (c *Cluster) placement(d int) (Placement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 || d >= len(c.manifest.Disks) {
		return Placement{}, false
	}
	return c.manifest.Disks[d], true
}

// reclaim deletes a placement's device and superblock blob off its
// node, fenced and best-effort: an unreachable node just keeps the
// orphan (the rejoin scrub collects it later).
func (c *Cluster) reclaim(p Placement) {
	cl := c.Client(p.Node)
	if cl == nil {
		return
	}
	_ = cl.DeleteDevice(p.Device)
	_ = cl.DeleteBlob(p.Super)
}

// scrubStaleMedia deletes devices and blobs on node id that no current
// placement or in-flight migration references — the media a dead node
// still holds after its disks were healed elsewhere. Best-effort.
func (c *Cluster) scrubStaleMedia(id string) {
	cl := c.Client(id)
	if cl == nil {
		return
	}
	st, err := cl.Stat()
	if err != nil {
		return
	}
	keep := map[string]bool{}
	c.mu.Lock()
	for _, p := range c.manifest.Disks {
		if p.Node == id {
			keep[p.Device] = true
			keep[p.Super] = true
		}
	}
	c.mu.Unlock()
	_, vals := c.Mount.Meta.Journal().KVRange(migrateKeyPrefix)
	for _, v := range vals {
		var rec MigrationRecord
		if json.Unmarshal(v, &rec) != nil {
			continue
		}
		for _, p := range []Placement{rec.Src, rec.Dst} {
			if p.Node == id {
				keep[p.Device] = true
				keep[p.Super] = true
			}
		}
	}
	for name := range st.Devices {
		if !keep[name] {
			_ = cl.DeleteDevice(name)
		}
	}
	for name := range st.Blobs {
		if !keep[name] {
			_ = cl.DeleteBlob(name)
		}
	}
}

// runMigration executes (or resumes) one committed migration record to
// completion. Caller holds memberMu. A nil return means the record is
// gone — the migration finished or was abandoned as obsolete; an
// errMigrationParked-wrapped return means the record stays committed
// for a successor (stop requested, coordinator deposed, quorum lost).
func (c *Cluster) runMigration(rec MigrationRecord) error {
	eng := c.Eng
	arr := eng.Array()
	slots := int64(arr.Analyzer().SlotsPerDisk())
	cycles := arr.Cycles()
	strips := cycles * slots
	stripBytes := arr.StripBytes()
	d := rec.Disk

	cur, ok := c.placement(d)
	if !ok {
		return c.deleteMigRecord(d)
	}
	if cur == rec.Dst {
		// The flip committed before a crash: only finalization is left.
		c.reclaim(rec.Src)
		return c.deleteMigRecord(d)
	}
	if cur != rec.Src {
		// The world moved on while the record was parked (the disk was
		// healed onto a different placement). The record is obsolete;
		// drop the half-copied destination.
		c.reclaim(rec.Dst)
		return c.deleteMigRecord(d)
	}

	dstCl := c.Client(rec.Dst.Node)
	if dstCl == nil {
		// Destination left the membership while the record was parked.
		return c.deleteMigRecord(d)
	}
	dstDev, err := dstCl.CreateDevice(rec.Dst.Device, strips, stripBytes)
	if err != nil {
		return c.migrateAside(rec, fmt.Errorf("cluster: migrate disk %d: create destination: %w", d, err))
	}
	dstSb, err := dstCl.CreateBlob(rec.Dst.Super)
	if err != nil {
		return c.migrateAside(rec, fmt.Errorf("cluster: migrate disk %d: create destination superblock: %w", d, err))
	}

	// Resuming a partial copy: the copied prefix may be stale — mount
	// replay rewrote source strips the dead coordinator's mirror never
	// saw. Compare per-strip checksums and restart from the first cycle
	// that differs.
	if rec.Cursor > 0 {
		if rec.Cursor > cycles {
			rec.Cursor = cycles
		}
		srcCl := c.Client(rec.Src.Node)
		if srcCl == nil {
			return c.deleteMigRecord(d)
		}
		srcDev := srcCl.Device(rec.Src.Device, strips, stripBytes)
		verified, err := verifyCopiedPrefix(srcDev, dstDev, rec.Cursor, slots)
		if err != nil {
			return c.migrateAside(rec, fmt.Errorf("cluster: migrate disk %d: verify prefix: %w", d, err))
		}
		rec.Cursor = verified
	}

	mirror, err := eng.StartMirror(d, dstDev)
	if err != nil {
		// The source disk failed (heal owns it now) or a mirror is
		// already installed; either way this record cannot proceed.
		return c.migrateFailed(rec, fmt.Errorf("cluster: migrate disk %d: %w", d, err))
	}
	done := false
	defer func() {
		if !done {
			_ = eng.AbortMigration(d)
		}
	}()

	buf := make([]byte, slots*int64(stripBytes))
	copyCycle := func(cy int64) error {
		unlock := eng.LockCycle(cy)
		defer unlock()
		for s := int64(0); s < slots; s++ {
			if err := arr.ProbeDiskStrip(d, cy*slots+s, buf[s*int64(stripBytes):(s+1)*int64(stripBytes)]); err != nil {
				return err
			}
		}
		return dstDev.WriteStripRange(cy*slots, buf)
	}

	for cy := rec.Cursor; cy < cycles; cy++ {
		if !eng.PaceBackground(c.migStop) {
			return errMigrationParked
		}
		for {
			err := copyCycle(cy)
			if err == nil {
				break
			}
			if errors.Is(err, store.ErrStaleEpoch) {
				return fmt.Errorf("%w: %w", errMigrationParked, err)
			}
			if errors.Is(err, store.ErrClosed) || errors.Is(err, engine.ErrClosed) {
				// Shutdown raced the copy: park, the next open resumes.
				return errMigrationParked
			}
			if !errors.Is(err, store.ErrTransient) || dstCl.Lost() {
				return c.migrateFailed(rec, fmt.Errorf("cluster: migrate disk %d cycle %d: %w", d, cy, err))
			}
			// Transient (partition, node down): wait for the path to heal.
			select {
			case <-c.migStop:
				return errMigrationParked
			case <-time.After(migrateRetryEvery):
			}
		}
		rec.Cursor = cy + 1
		if err := c.putMigRecord(rec); err != nil {
			// Quorum lost or deposed: the copy cannot claim durability.
			return fmt.Errorf("%w: commit cursor: %w", errMigrationParked, err)
		}
	}

	// Flip. Everything in the finish closure runs under the exclusive
	// mode lock: no foreground write is in flight and none can start, so
	// the dirty set is final and the swap is atomic against I/O.
	srcSb := c.srcSuperblockBlob(rec.Src)
	flip := func() error {
		for _, idx := range mirror.Dirty() {
			b := buf[:stripBytes]
			if err := mirror.Source().ReadStrip(idx, b); err != nil {
				return err
			}
			if err := dstDev.WriteStrip(idx, b); err != nil {
				return err
			}
			mirror.ClearDirty(idx)
		}
		if err := c.Mount.Meta.CloneSuperblock(d, dstSb); err != nil {
			return err
		}
		c.mu.Lock()
		prev := c.manifest.Disks[d]
		c.manifest.Disks[d] = rec.Dst
		err := c.saveManifestLocked()
		if err != nil {
			c.manifest.Disks[d] = prev
		}
		c.mu.Unlock()
		if err != nil {
			// The commit did not land: the source stays authoritative,
			// so its blob must hold the superblock binding again.
			if srcSb != nil {
				_ = c.Mount.Meta.CloneSuperblock(d, srcSb)
			}
			return err
		}
		return nil
	}
	for {
		err := eng.CompleteMigration(d, dstDev, flip)
		if err == nil {
			break
		}
		if errors.Is(err, store.ErrStaleEpoch) {
			return fmt.Errorf("%w: %w", errMigrationParked, err)
		}
		if errors.Is(err, store.ErrClosed) || errors.Is(err, engine.ErrClosed) {
			return errMigrationParked
		}
		if !errors.Is(err, store.ErrTransient) || dstCl.Lost() {
			return c.migrateFailed(rec, fmt.Errorf("cluster: migrate disk %d: flip: %w", d, err))
		}
		select {
		case <-c.migStop:
			return errMigrationParked
		case <-time.After(migrateRetryEvery):
		}
	}
	done = true

	// Reclaim before deleting the record: a crash in between leaves the
	// finalize-only path above, which reclaims again (idempotent).
	c.reclaim(rec.Src)
	return c.deleteMigRecord(d)
}

// migrateAside parks the record when the cause is transient (partition,
// node down — the next attempt can succeed), abandons otherwise.
func (c *Cluster) migrateAside(rec MigrationRecord, cause error) error {
	if errors.Is(cause, store.ErrTransient) {
		return fmt.Errorf("%w: %w", errMigrationParked, cause)
	}
	return c.migrateFailed(rec, cause)
}

// migrateFailed abandons a migration: the destination leftovers are
// reclaimed and the record deleted — the source placement stays
// authoritative and untouched.
func (c *Cluster) migrateFailed(rec MigrationRecord, cause error) error {
	c.reclaim(rec.Dst)
	if err := c.deleteMigRecord(rec.Disk); err != nil {
		return fmt.Errorf("%w: abandoning after %w", errMigrationParked, cause)
	}
	return cause
}

// srcSuperblockBlob rebinds a handle to the source's superblock blob —
// the restore target when a flip fails to commit.
func (c *Cluster) srcSuperblockBlob(p Placement) *netdev.NetBlob {
	cl := c.Client(p.Node)
	if cl == nil {
		return nil
	}
	return cl.Blob(p.Super)
}

// verifyCopiedPrefix compares per-strip checksums of the first cursor
// cycles on source and destination and returns the length of the
// longest verified prefix (in cycles) — the safe resume point.
func verifyCopiedPrefix(src, dst *netdev.NetDevice, cursor, slots int64) (int64, error) {
	for cy := int64(0); cy < cursor; cy++ {
		ss, err := src.StripSums(cy*slots, int(slots))
		if err != nil {
			return 0, err
		}
		ds, err := dst.StripSums(cy*slots, int(slots))
		if err != nil {
			return 0, err
		}
		for i := range ss {
			if ss[i] != ds[i] {
				return cy, nil
			}
		}
	}
	return cursor, nil
}
