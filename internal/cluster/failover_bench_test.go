package cluster

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/oiraid/oiraid/internal/engine"
	"github.com/oiraid/oiraid/internal/store/netdev"
)

// benchHANodes boots the three mem-backed storage nodes an HA
// coordinator replicates its metadata onto.
func benchHANodes(b *testing.B) []NodeSpec {
	b.Helper()
	var specs []NodeSpec
	for _, id := range []string{"alpha", "beta", "gamma"} {
		n := netdev.NewMemNode(id)
		srv := httptest.NewServer(n.Handler())
		b.Cleanup(srv.Close)
		specs = append(specs, NodeSpec{ID: id, URL: srv.URL})
	}
	return specs
}

func benchHAOptions(b *testing.B, specs []NodeSpec, holder string, format bool) Options {
	opts := Options{
		Dir:   b.TempDir(),
		Nodes: specs,
		Client: netdev.Options{
			Timeout:     5 * time.Second,
			MaxAttempts: 2,
			Grace:       time.Hour,
		},
		Engine:     engine.Options{Workers: 4},
		Holder:     holder,
		LeaseRenew: 100 * time.Millisecond,
	}
	if format {
		opts.Format = &FormatSpec{Disks: 9, Cycles: 2, StripBytes: 4096}
	}
	return opts
}

// BenchmarkFailoverQuorumAppend measures an HA strip write: the parity
// closure plus its intent-journal append replicated to a node quorum
// before the ack. The delta against BenchmarkClusterWriteStrip is the
// price of surviving coordinator loss.
func BenchmarkFailoverQuorumAppend(b *testing.B) {
	specs := benchHANodes(b)
	c, err := Open(benchHAOptions(b, specs, "bench-leader", true))
	if err != nil {
		b.Fatalf("open HA cluster: %v", err)
	}
	b.Cleanup(func() { c.Close() })
	p := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(p)
	strips := c.Eng.Strips()
	lats := make([]time.Duration, 0, b.N)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := c.Eng.WriteStrip(int64(i)%strips, p); err != nil {
			b.Fatalf("write: %v", err)
		}
		lats = append(lats, time.Since(t0))
	}
	b.StopTimer()
	reportLatency(b, lats)
}

// BenchmarkFailoverTakeover measures a full fenced takeover against an
// established cluster: acquire a higher epoch from the quorum, recover
// the manifest and both journal regions from replicas, mount the array,
// and replay pending closures — the wall-clock a standby adds on top of
// its detection window.
func BenchmarkFailoverTakeover(b *testing.B) {
	specs := benchHANodes(b)
	c, err := Open(benchHAOptions(b, specs, "bench-leader", true))
	if err != nil {
		b.Fatalf("open HA cluster: %v", err)
	}
	p := make([]byte, 4096)
	rand.New(rand.NewSource(6)).Read(p)
	for s := int64(0); s < c.Eng.Strips(); s += 4 {
		if err := c.Eng.WriteStrip(s, p); err != nil {
			b.Fatalf("seed write: %v", err)
		}
	}
	if err := c.Close(); err != nil {
		b.Fatalf("leader close: %v", err)
	}
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := benchHAOptions(b, specs, fmt.Sprintf("bench-succ-%d", i), false)
		t0 := time.Now()
		succ, err := Open(opts)
		if err != nil {
			b.Fatalf("takeover %d: %v", i, err)
		}
		lats = append(lats, time.Since(t0))
		b.StopTimer()
		if err := succ.Close(); err != nil {
			b.Fatalf("successor close: %v", err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	reportLatency(b, lats)
}
