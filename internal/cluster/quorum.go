package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
)

// Names of the coordinator metadata blobs replicated onto the nodes.
// Together they are the whole metadata plane: the cluster map plus both
// metadata-journal regions.
const (
	metaBlobManifest = "manifest"
	metaBlobJournal0 = "meta0"
	metaBlobJournal1 = "meta1"
)

// replicator fans coordinator metadata writes out to the storage nodes
// and requires a majority before reporting success. It is the shared
// half of every quorumBlob: one fencing epoch, one deposed latch.
//
// The voter set (order) is fixed for the reign: membership changes to
// the data plane (AddNode/DrainNode) do not alter who votes on metadata
// until the next coordinator open reads the updated node list. Only the
// client *behind* a voter may be swapped (setClient) — the rejoin path
// replaces a lost node's latched-dead client with a fresh one so the
// voter comes back instead of staying unreachable for the reign.
type replicator struct {
	holder  string
	fence   *netdev.FenceToken
	order   []string
	mu      sync.RWMutex
	clients map[string]*netdev.NodeClient
	deposed atomic.Bool
}

func (r *replicator) quorum() int { return len(r.order)/2 + 1 }

func (r *replicator) client(id string) *netdev.NodeClient {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.clients[id]
}

// setClient swaps the client behind an existing voter; unknown IDs are
// ignored (a node added after this reign started is not a voter).
func (r *replicator) setClient(id string, cl *netdev.NodeClient) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.clients[id]; ok {
		r.clients[id] = cl
	}
}

// fanout runs op against every node concurrently and demands a quorum
// of successes. A stale-epoch verdict from any node latches the deposed
// flag and wins over every other error: the coordinator must stand
// down, not retry.
func (r *replicator) fanout(op func(*netdev.NodeClient) error) error {
	errs := make([]error, len(r.order))
	var wg sync.WaitGroup
	for i, id := range r.order {
		wg.Add(1)
		go func(i int, cl *netdev.NodeClient) {
			defer wg.Done()
			errs[i] = op(cl)
		}(i, r.client(id))
	}
	wg.Wait()

	ok := 0
	var firstErr error
	for i, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, store.ErrStaleEpoch):
			r.deposed.Store(true)
			return fmt.Errorf("cluster: deposed by node %s: %w", r.order[i], err)
		case firstErr == nil:
			firstErr = fmt.Errorf("node %s: %w", r.order[i], err)
		}
	}
	if ok < r.quorum() {
		return fmt.Errorf("cluster: metadata quorum lost (%d/%d acks, need %d): %w: %v",
			ok, len(r.order), r.quorum(), store.ErrUnreachable, firstErr)
	}
	return nil
}

// Deposed reports whether any node has fenced this coordinator off.
func (r *replicator) Deposed() bool { return r.deposed.Load() }

// quorumBlob is a store.Blob whose writes are durable only once a
// majority of storage nodes hold them: the local blob is a cache for
// reads and replay, the node copies are the authoritative record a
// standby reassembles at takeover.
//
// The write contract is shaped for the metadata journal's acked-frontier
// discipline: when the local write lands but the quorum does not,
// WriteAt still returns n == len(p) alongside the error — the frame has
// claimed its offsets (so no two replicas can ever hold different
// frames at one offset) and the journal re-sends the unacked suffix in
// front of its next append.
type quorumBlob struct {
	name  string
	local store.Blob
	rep   *replicator
	gen   atomic.Uint64
}

func newQuorumBlob(name string, local store.Blob, rep *replicator, gen uint64) *quorumBlob {
	b := &quorumBlob{name: name, local: local, rep: rep}
	b.gen.Store(gen)
	return b
}

func (b *quorumBlob) ReadAt(p []byte, off int64) (int, error) { return b.local.ReadAt(p, off) }
func (b *quorumBlob) Size() (int64, error)                    { return b.local.Size() }
func (b *quorumBlob) Close() error                            { return b.local.Close() }

func (b *quorumBlob) WriteAt(p []byte, off int64) (int, error) {
	n, err := b.local.WriteAt(p, off)
	if err != nil || n != len(p) {
		return n, err
	}
	gen := b.gen.Load()
	err = b.rep.fanout(func(cl *netdev.NodeClient) error {
		return cl.MetaWriteAt(b.name, p, off, b.rep.fence.Epoch(), gen)
	})
	return len(p), err
}

func (b *quorumBlob) Sync() error {
	if err := b.local.Sync(); err != nil {
		return err
	}
	gen := b.gen.Load()
	return b.rep.fanout(func(cl *netdev.NodeClient) error {
		return cl.MetaSync(b.name, b.rep.fence.Epoch(), gen)
	})
}

// Truncate opens a new generation: the gen bump is what guarantees any
// replica that missed it gets wiped before accepting bytes of the new
// stream, so stale frames from the old stream can never leak into a
// takeover merge.
func (b *quorumBlob) Truncate(size int64) error {
	gen := b.gen.Add(1)
	if err := b.local.Truncate(size); err != nil {
		return err
	}
	return b.rep.fanout(func(cl *netdev.NodeClient) error {
		return cl.MetaTruncate(b.name, size, b.rep.fence.Epoch(), gen)
	})
}

// takeover is the fenced leadership acquisition + metadata recovery
// that runs inside Open when Holder is set:
//
//  1. Survey a quorum of nodes for the highest promised epoch and claim
//     the next one — every node that grants it will from now on reject
//     the previous coordinator's writes (data plane included).
//  2. Reassemble the manifest and both metadata-journal regions from
//     the replicas a quorum holds: newest generation wins, torn tails
//     and per-replica holes are tolerated by the frame-level merge.
//  3. Reseed the merged images back out at a fresh generation, so the
//     new reign starts from a converged majority-held state.
//
// Returns the two journal regions as quorum-replicated blobs ready for
// MountArray, and whether a manifest was found (on the quorum, or —
// upgrade path — in the local cache when the quorum has never held
// one).
func (c *Cluster) takeover(loaded bool) (j0, j1 store.Blob, haveManifest bool, err error) {
	rep := c.rep

	// 1. Epoch survey + lease.
	states := make([]*netdev.MetaState, len(rep.order))
	var wg sync.WaitGroup
	for i, id := range rep.order {
		wg.Add(1)
		go func(i int, cl *netdev.NodeClient) {
			defer wg.Done()
			if st, err := cl.FetchMetaState(); err == nil {
				states[i] = &st
			}
		}(i, rep.client(id))
	}
	wg.Wait()
	responsive := 0
	var maxEpoch uint64
	for _, st := range states {
		if st == nil {
			continue
		}
		responsive++
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
	}
	if responsive < rep.quorum() {
		return nil, nil, false, fmt.Errorf(
			"cluster: takeover needs a node quorum, only %d/%d answered: %w",
			responsive, len(rep.order), store.ErrUnreachable)
	}
	epoch := maxEpoch + 1
	rep.fence.Advance(epoch)
	grants := make([]bool, len(rep.order))
	for i, id := range rep.order {
		wg.Add(1)
		go func(i int, cl *netdev.NodeClient) {
			defer wg.Done()
			grants[i] = cl.AcquireLease(epoch, rep.holder) == nil
		}(i, rep.client(id))
	}
	wg.Wait()
	granted := 0
	for _, ok := range grants {
		if ok {
			granted++
		}
	}
	if granted < rep.quorum() {
		// A rival claimed a higher epoch between survey and acquire, or
		// the quorum slipped away. Either way this reign never starts.
		return nil, nil, false, fmt.Errorf(
			"cluster: lease epoch %d granted by %d/%d nodes, need %d: %w",
			epoch, granted, len(rep.order), rep.quorum(), store.ErrStaleEpoch)
	}

	// 2+3. Manifest, then both journal regions.
	manReps := fetchReplicas(rep, metaBlobManifest)
	if m, _, ok := recoverManifest(manReps); ok {
		c.manifest = m
		haveManifest = true
	} else {
		haveManifest = loaded
	}
	c.manGen = maxGen(manReps)

	if j0, err = c.recoverRegion(metaBlobJournal0, "meta0.journal"); err != nil {
		return nil, nil, false, err
	}
	if j1, err = c.recoverRegion(metaBlobJournal1, "meta1.journal"); err != nil {
		j0.Close()
		return nil, nil, false, err
	}
	return j0, j1, haveManifest, nil
}

// recoverRegion rebuilds one journal-region blob from the quorum and
// hands it back quorum-wrapped. A virgin quorum (no node has ever held
// the blob) seeds from the local cache file instead — the upgrade path
// for a pre-HA coordinator directory.
func (c *Cluster) recoverRegion(name, file string) (store.Blob, error) {
	reps := fetchReplicas(c.rep, name)
	data := recoverJournalRegion(reps)
	var local store.Blob
	var err error
	if c.dir != "" {
		if local, err = store.CreateFileBlob(filepath.Join(c.dir, file)); err != nil {
			return nil, err
		}
	} else {
		local = store.NewMemBlob()
	}
	if data == nil && len(reps) == 0 {
		if data, err = readAllBlob(local); err != nil {
			local.Close()
			return nil, err
		}
	}
	gen := maxGen(reps) + 1
	if err := reseed(c.rep, name, local, data, gen); err != nil {
		local.Close()
		return nil, err
	}
	return newQuorumBlob(name, local, c.rep, gen), nil
}

// nodesMatch checks a recovered manifest against the configured node
// list: same IDs or the config points at the wrong cluster.
func nodesMatch(man, conf []NodeSpec) error {
	if len(man) != len(conf) {
		return fmt.Errorf("cluster: manifest lists %d nodes, config %d", len(man), len(conf))
	}
	ids := map[string]bool{}
	for _, n := range conf {
		ids[n.ID] = true
	}
	for _, n := range man {
		if !ids[n.ID] {
			return fmt.Errorf("cluster: manifest node %q not in configured node list", n.ID)
		}
	}
	return nil
}

func readAllBlob(b store.Blob) ([]byte, error) {
	size, err := b.Size()
	if err != nil || size == 0 {
		return nil, err
	}
	buf := make([]byte, size)
	n, err := b.ReadAt(buf, 0)
	if err != nil && n != len(buf) {
		return nil, err
	}
	return buf, nil
}

// metaReplica is one node's copy of a metadata blob.
type metaReplica struct {
	node string
	gen  uint64
	data []byte
}

// fetchReplicas collects every responsive node's copy of blob name.
// Nodes that do not hold the blob (or cannot be reached) are simply
// absent from the result — quorum accounting happens in the callers.
func fetchReplicas(rep *replicator, name string) []metaReplica {
	out := make([]metaReplica, len(rep.order))
	var wg sync.WaitGroup
	for i, id := range rep.order {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			data, gen, err := rep.client(id).ReadMetaBlob(name)
			if err != nil {
				out[i] = metaReplica{}
				return
			}
			out[i] = metaReplica{node: id, gen: gen, data: data}
		}(i, id)
	}
	wg.Wait()
	var got []metaReplica
	for _, r := range out {
		if r.node != "" {
			got = append(got, r)
		}
	}
	return got
}

// maxGen returns the highest generation among the replicas (0 if none).
func maxGen(reps []metaReplica) uint64 {
	var g uint64
	for _, r := range reps {
		if r.gen > g {
			g = r.gen
		}
	}
	return g
}

// recoverJournalRegion reassembles one journal-region blob from its
// replicas. Only the newest generation is eligible: a quorum-acked
// truncation (compaction open, poison clear) is itself part of history,
// and reaching below it could resurrect a failed compaction snapshot
// that was never acknowledged — the exact split-brain the generation
// bump exists to kill. Within the newest generation the frame-level
// merge tolerates torn tails and per-replica holes (store.
// MergeJournalReplicas); a region that does not merge contributes
// nothing, which is safe because every acknowledged append reached a
// majority at that generation.
func recoverJournalRegion(reps []metaReplica) []byte {
	top := maxGen(reps)
	var streams [][]byte
	for _, r := range reps {
		if r.gen == top {
			streams = append(streams, r.data)
		}
	}
	if merged, ok := store.MergeJournalReplicas(streams); ok {
		return merged
	}
	return nil
}

// recoverManifest picks the newest parseable manifest among the
// replicas: generations descending, so a torn (never-acknowledged) save
// at the top generation falls back to the last acknowledged one — which
// a majority holds by construction, and a quorum read intersects.
func recoverManifest(reps []metaReplica) (Manifest, []byte, bool) {
	for gen := maxGen(reps); gen > 0; gen-- {
		for _, r := range reps {
			if r.gen != gen {
				continue
			}
			if m, err := ParseManifest(r.data); err == nil {
				return m, r.data, true
			}
		}
	}
	return Manifest{}, nil, false
}

// reseed pushes recovered bytes back out as a fresh generation on a
// quorum of nodes (and into the local cache blob), so the new
// coordinator starts from a converged, majority-held image instead of
// the scattered per-replica states it merged from.
func reseed(rep *replicator, name string, local store.Blob, data []byte, gen uint64) error {
	if err := local.Truncate(0); err != nil {
		return err
	}
	if len(data) > 0 {
		if n, err := local.WriteAt(data, 0); err != nil || n != len(data) {
			return fmt.Errorf("cluster: reseed local %s: %w", name, err)
		}
	}
	if err := local.Sync(); err != nil {
		return err
	}
	epoch := rep.fence.Epoch()
	return rep.fanout(func(cl *netdev.NodeClient) error {
		if err := cl.MetaTruncate(name, 0, epoch, gen); err != nil {
			return err
		}
		if len(data) > 0 {
			if err := cl.MetaWriteAt(name, data, 0, epoch, gen); err != nil {
				return err
			}
		}
		return cl.MetaSync(name, epoch, gen)
	})
}
