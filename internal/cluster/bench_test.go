package cluster

import (
	"math/rand"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"github.com/oiraid/oiraid/internal/engine"
	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
)

// benchCluster boots three mem-backed storage nodes over loopback HTTP
// and mounts the coordinator across them — the full wire path, no fault
// transports in the way.
func benchCluster(b *testing.B) (*Cluster, []*httptest.Server) {
	b.Helper()
	var specs []NodeSpec
	var srvs []*httptest.Server
	for _, id := range []string{"alpha", "beta", "gamma"} {
		n := netdev.NewMemNode(id)
		srv := httptest.NewServer(n.Handler())
		b.Cleanup(srv.Close)
		srvs = append(srvs, srv)
		specs = append(specs, NodeSpec{ID: id, URL: srv.URL})
	}
	c, err := Open(Options{
		Dir:   b.TempDir(),
		Nodes: specs,
		Client: netdev.Options{
			Timeout:     5 * time.Second,
			MaxAttempts: 2,
			Grace:       time.Hour, // never promote to lost mid-benchmark
		},
		Engine: engine.Options{Workers: 4},
		Format: &FormatSpec{Disks: 9, Cycles: 2, StripBytes: 4096},
	})
	if err != nil {
		b.Fatalf("open cluster: %v", err)
	}
	b.Cleanup(func() { c.Close() })
	return c, srvs
}

func reportLatency(b *testing.B, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i].Nanoseconds()) / 1e6
	}
	b.ReportMetric(p(0.50), "p50-ms")
	b.ReportMetric(p(0.99), "p99-ms")
}

// BenchmarkClusterWriteStrip measures a full coordinator strip write —
// parity-closure RMW fanned out over HTTP to three nodes.
func BenchmarkClusterWriteStrip(b *testing.B) {
	c, _ := benchCluster(b)
	p := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(p)
	strips := c.Eng.Strips()
	lats := make([]time.Duration, 0, b.N)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := c.Eng.WriteStrip(int64(i)%strips, p); err != nil {
			b.Fatalf("write: %v", err)
		}
		lats = append(lats, time.Since(t0))
	}
	b.StopTimer()
	reportLatency(b, lats)
}

// BenchmarkClusterReadStrip measures a healthy coordinator read: one
// wire round-trip to the node holding the data strip.
func BenchmarkClusterReadStrip(b *testing.B) {
	c, _ := benchCluster(b)
	p := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(p)
	strips := c.Eng.Strips()
	for s := int64(0); s < strips; s++ {
		if err := c.Eng.WriteStrip(s, p); err != nil {
			b.Fatalf("seed write: %v", err)
		}
	}
	lats := make([]time.Duration, 0, b.N)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := c.Eng.ReadStrip(int64(i) % strips); err != nil {
			b.Fatalf("read: %v", err)
		}
		lats = append(lats, time.Since(t0))
	}
	b.StopTimer()
	reportLatency(b, lats)
}

// BenchmarkMigrateDisk measures membership-plane strip migration: one
// disk ping-pongs between two nodes through the full fenced pipeline —
// record commit, mirrored bulk copy, cursor commits, manifest flip,
// source reclaim — while a foreground reader samples latency under the
// migration load. bytes/op is the disk's full payload; p50/p99 are the
// foreground read latencies during the moves.
func BenchmarkMigrateDisk(b *testing.B) {
	c, _ := benchCluster(b)
	p := make([]byte, 4096)
	rand.New(rand.NewSource(4)).Read(p)
	strips := c.Eng.Strips()
	for s := int64(0); s < strips; s++ {
		if err := c.Eng.WriteStrip(s, p); err != nil {
			b.Fatalf("seed write: %v", err)
		}
	}
	diskBytes := c.Eng.Array().Cycles() * int64(c.Eng.Array().Analyzer().SlotsPerDisk()) * 4096

	stop := make(chan struct{})
	done := make(chan []time.Duration, 1)
	go func() {
		var lats []time.Duration
		s := int64(0)
		for {
			select {
			case <-stop:
				done <- lats
				return
			default:
			}
			t0 := time.Now()
			if _, err := c.Eng.ReadStrip(s % strips); err == nil {
				lats = append(lats, time.Since(t0))
			}
			s++
			time.Sleep(time.Millisecond)
		}
	}()

	// Disk 0 starts on alpha; ping-pong it to beta and back.
	targets := [2]string{"beta", "alpha"}
	b.SetBytes(diskBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.memberMu.Lock()
		err := c.migrateDisk(0, targets[i%2])
		c.memberMu.Unlock()
		if err != nil {
			b.Fatalf("migrate %d: %v", i, err)
		}
	}
	b.StopTimer()
	close(stop)
	reportLatency(b, <-done)
}

// BenchmarkClusterDegradedRead measures a reconstruct-read with one
// node dark: the read fans out to the surviving nodes and decodes the
// strip from parity — the cost a partition adds to the read path once
// the dark node's breaker is open.
func BenchmarkClusterDegradedRead(b *testing.B) {
	c, srvs := benchCluster(b)
	p := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(p)
	strips := c.Eng.Strips()
	for s := int64(0); s < strips; s++ {
		if err := c.Eng.WriteStrip(s, p); err != nil {
			b.Fatalf("seed write: %v", err)
		}
	}
	srvs[2].CloseClientConnections()
	srvs[2].Close() // gamma goes dark
	// Mark gamma's disks failed — the post-grace "node lost" state — so
	// every read takes the reconstruct path instead of retrying the wire.
	// The first evictions commit superblocks while gamma's other disks
	// are still live-but-dark, so they surface transient errors; the
	// in-memory failed state still advances and the last commit lands.
	for _, d := range c.DisksOn("gamma") {
		if err := c.Eng.FailDisk(d); err != nil && !store.IsTransient(err) {
			b.Fatalf("fail disk %d: %v", d, err)
		}
	}
	for s := int64(0); s < strips; s++ {
		if _, err := c.Eng.ReadStrip(s); err != nil {
			b.Fatalf("warm degraded read %d: %v", s, err)
		}
	}
	lats := make([]time.Duration, 0, b.N)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := c.Eng.ReadStrip(int64(i) % strips); err != nil {
			b.Fatalf("degraded read: %v", err)
		}
		lats = append(lats, time.Since(t0))
	}
	b.StopTimer()
	reportLatency(b, lats)
}
