package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oiraid/oiraid/internal/engine"
	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
)

// TestDegradationChaosSweep is the graceful-degradation oracle: a seeded
// composition of torn responses, slow bursts, one permanent node kill
// (gamma) and one transient partition (beta) pushes the array beyond its
// 3-failure tolerance — six of nine disks dark. The sweep then asserts
// the whole degradation contract at once:
//
//   - the serving mode demotes to partial-read and writes are fenced
//     with store.ErrReadOnly (never silently dropped, never acked);
//   - every strip the layout can still decode reads back bit-exact;
//   - every undecodable strip errors — stale or fabricated data is the
//     one unforgivable answer;
//   - when beta returns the mode promotes to writable and acked writes
//     flow again; when gamma's grace expires its disks are evicted and
//     healed onto survivors;
//   - the array ends in mode normal with a clean fsck, every acked
//     write durable — and again after a full remount.
func TestDegradationChaosSweep(t *testing.T) {
	seeds := []int64{13, 37}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDegradationSweep(t, seed)
		})
	}
}

func runDegradationSweep(t *testing.T, seed int64) {
	tc := newTestCluster(t, seed)
	opts := tc.options(seed)
	opts.Client.Timeout = 250 * time.Millisecond
	// Grace long enough that beta's transient outage — held open while
	// the partial-mode oracle scan runs — never turns into an eviction
	// (Lost is permanent: a node declared lost never rejoins).
	opts.Client.Grace = 10 * time.Second
	opts.Format = &FormatSpec{Disks: 9, Cycles: 3, StripBytes: 512}
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	strips := c.Eng.Strips()
	const stripBytes = 512
	oracle := make([]atomic.Int64, strips)    // last ACKED version per strip
	attempted := make([]atomic.Int64, strips) // newest version ever issued
	pattern := func(s, ver int64) []byte {
		p := make([]byte, stripBytes)
		binary.BigEndian.PutUint64(p[0:8], uint64(s))
		binary.BigEndian.PutUint64(p[8:16], uint64(ver))
		for i := 16; i < len(p); i++ {
			p[i] = byte(int64(i)*seed + s + ver)
		}
		return p
	}
	for s := int64(0); s < strips; s++ {
		if err := c.Eng.WriteStrip(s, pattern(s, 0)); err != nil {
			t.Fatalf("preload %d: %v", s, err)
		}
	}

	// Workers own disjoint strips and retry until acked; a fenced write
	// (ErrReadOnly) is an expected verdict mid-sweep, never an ack.
	const workers = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var fencedSeen, writeErrs, neverAcked atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ver := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for s := int64(w); s < strips; s += workers {
					ver++
					attempted[s].Store(ver)
					for attempt := 0; ; attempt++ {
						err := c.Eng.WriteStrip(s, pattern(s, ver))
						if err == nil {
							oracle[s].Store(ver)
							break
						}
						if errors.Is(err, store.ErrReadOnly) {
							fencedSeen.Add(1)
						} else {
							writeErrs.Add(1)
						}
						if attempt > 4000 {
							// Liveness violation; recorded here and asserted on
							// the main goroutine after the drain (a worker must
							// not Fail a test that already finished).
							neverAcked.Add(1)
							return
						}
						select {
						case <-stop:
							return
						case <-time.After(5 * time.Millisecond):
						}
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}(w)
	}

	// Phase 0 — torn responses on alpha plus a slow burst on beta: the
	// retry layer must absorb both without any durability consequence.
	tc.faults["alpha"].SetTorn(7)
	tc.faults["beta"].SetDelay(2 * time.Millisecond)
	time.Sleep(200 * time.Millisecond)
	tc.faults["alpha"].SetTorn(0)
	tc.faults["beta"].SetDelay(0)

	// Phase 1 — beyond tolerance: gamma dies for good, beta partitions
	// transiently. Six disks dark is past any-3 tolerance, so the engine
	// must demote to partial-read.
	tc.faults["gamma"].SetPartition(netdev.PartDrop)
	tc.faults["beta"].SetPartition(netdev.PartDrop)
	betaDownAt := time.Now()
	demoteDeadline := time.Now().Add(8 * time.Second)
	for c.Eng.Mode() != engine.ModePartial {
		if time.Now().After(demoteDeadline) {
			t.Fatalf("mode never demoted to partial-read: %v (down %v)", c.Eng.Mode(), c.Eng.DownDisks())
		}
		// A little read traffic so breakers trip and down detection
		// converges even while writers are fenced.
		c.Eng.ReadStrip(int64(time.Now().UnixNano()) % strips)
		time.Sleep(10 * time.Millisecond)
	}

	// Per-strip availability oracle while beyond tolerance: classify
	// every data strip under the down set, then demand bit-exact reads
	// for the decodable ones and a refusal — never data — for the rest.
	down := c.Eng.DownDisks()
	av := c.Eng.Array().Availability(down)
	if av.Recoverable {
		t.Fatalf("down set %v classified recoverable in partial mode", down)
	}
	served, refused := 0, 0
	for s := int64(0); s < strips; s++ {
		st, _ := c.Eng.Array().LocateDataStrip(s)
		if av.StripAvailable(st) {
			// Decodable: must converge to a bit-exact read (first touches
			// may still be tripping breakers on down peers).
			var got []byte
			var rerr error
			for deadline := time.Now().Add(5 * time.Second); ; {
				got, rerr = c.Eng.ReadStrip(s)
				if rerr == nil || time.Now().After(deadline) {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if rerr != nil {
				t.Fatalf("decodable strip %d (%v) unreadable in partial mode: %v", s, st, rerr)
			}
			ver := int64(binary.BigEndian.Uint64(got[8:16]))
			if ver < oracle[s].Load() || ver > attempted[s].Load() || !bytes.Equal(got, pattern(s, ver)) {
				t.Fatalf("decodable strip %d: version %d outside [%d,%d] or content mismatch",
					s, ver, oracle[s].Load(), attempted[s].Load())
			}
			served++
		} else {
			if got, rerr := c.Eng.ReadStrip(s); rerr == nil {
				t.Fatalf("undecodable strip %d (%v) returned data in partial mode: %x", s, st, got[:16])
			}
			refused++
		}
	}
	if served == 0 || refused == 0 {
		t.Fatalf("partial scan served %d refused %d, want both non-zero", served, refused)
	}
	// The fence actually fired: workers saw ErrReadOnly and the engine
	// counted fenced admissions.
	if fencedSeen.Load() == 0 {
		t.Fatalf("no worker observed a fenced write in partial mode")
	}
	if c.Eng.Stats().WritesFenced == 0 {
		t.Fatalf("engine counted no fenced writes")
	}

	// Phase 2 — beta returns inside its grace window: the down set drops
	// to gamma's three disks, which is within tolerance, so the mode must
	// promote to a writable one and acked writes must flow again.
	tc.faults["beta"].SetPartition(netdev.PartNone)
	if c.Client("beta").Lost() {
		t.Fatalf("beta declared lost before its partition healed (down %v, grace %v): sweep timing broken",
			time.Since(betaDownAt).Round(time.Millisecond), opts.Client.Grace)
	}
	promoteDeadline := time.Now().Add(15 * time.Second)
	for !c.Eng.Mode().Writable() {
		if time.Now().After(promoteDeadline) {
			t.Fatalf("mode never promoted after beta healed: %v (down %v)", c.Eng.Mode(), c.Eng.DownDisks())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.Client("beta").Lost() {
		t.Fatalf("beta declared lost during a sub-grace partition")
	}

	// Phase 3 — gamma's grace expires: its disks are evicted, healed
	// onto survivors, and the array must return all the way to normal.
	healDeadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(healDeadline) {
		st := c.Eng.Status()
		if len(c.DisksOn("gamma")) == 0 && len(st.Failed) == 0 && !c.Eng.Rebuilding() && c.Eng.Mode() == engine.ModeNormal {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !c.Client("gamma").Lost() {
		t.Fatalf("gamma never declared lost")
	}
	close(stop)
	wg.Wait()
	c.Eng.RebuildWait()
	if n := neverAcked.Load(); n != 0 {
		t.Fatalf("%d worker writes never acked within the retry budget", n)
	}
	if m := c.Eng.Mode(); m != engine.ModeNormal {
		t.Fatalf("mode after heal: %v, want normal (down %v, failed %v)", m, c.Eng.DownDisks(), c.Eng.Status().Failed)
	}
	if st := c.Eng.Status(); st.Mode != "normal" || len(st.Down) != 0 {
		t.Fatalf("status after heal: mode %q down %v", st.Mode, st.Down)
	}
	t.Logf("seed %d: %d served / %d refused in partial mode, %d fenced writes, %d transport errors absorbed",
		seed, served, refused, fencedSeen.Load(), writeErrs.Load())

	verify := func(e *engine.Engine, when string) {
		for s := int64(0); s < strips; s++ {
			got, err := e.ReadStrip(s)
			if err != nil {
				t.Fatalf("%s: read %d: %v", when, s, err)
			}
			ver := int64(binary.BigEndian.Uint64(got[8:16]))
			acked, issued := oracle[s].Load(), attempted[s].Load()
			if ver < acked || ver > issued {
				t.Fatalf("%s: strip %d version %d outside [acked %d, attempted %d]", when, s, ver, acked, issued)
			}
			if !bytes.Equal(got, pattern(s, ver)) {
				t.Fatalf("%s: strip %d content does not match any issued write", when, s)
			}
		}
	}
	verify(c.Eng, "after heal")
	rep, err := c.Eng.Fsck(context.Background(), false)
	if err != nil || !rep.Clean {
		t.Fatalf("fsck after heal: %v %+v", err, rep)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Remount with gamma still dark: survivors alone carry the array.
	ropts := tc.options(seed + 1)
	ropts.Client.Timeout = 250 * time.Millisecond
	ropts.Client.Grace = 4 * time.Second
	ropts.Format = nil
	c2, err := Open(ropts)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	defer c2.Close()
	if !c2.Mount.WasClean {
		t.Fatalf("remount after clean close saw an unclean seal")
	}
	if m := c2.Eng.Mode(); m != engine.ModeNormal {
		t.Fatalf("remount mode %v, want normal", m)
	}
	verify(c2.Eng, "after remount")
	rep, err = c2.Eng.Fsck(context.Background(), false)
	if err != nil || !rep.Clean {
		t.Fatalf("fsck after remount: %v %+v", err, rep)
	}
}
