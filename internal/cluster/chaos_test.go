package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
)

// TestClusterChaosSweep is the cluster durability oracle: concurrent
// writers keep the array hot while one node suffers an asymmetric
// partition (requests land, acks are dropped) and another is killed for
// good. Every write a worker saw acked must read back bit-identical
// after the heal — and again after a full remount from the persisted
// manifest. Foreground reads must keep succeeding during the partition
// via degraded reconstruction.
func TestClusterChaosSweep(t *testing.T) {
	seeds := []int64{11, 29}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSweep(t, seed)
		})
	}
}

func runChaosSweep(t *testing.T, seed int64) {
	tc := newTestCluster(t, seed)
	opts := tc.options(seed)
	opts.Client.Timeout = 250 * time.Millisecond
	opts.Client.Grace = 700 * time.Millisecond
	opts.Format = &FormatSpec{Disks: 9, Cycles: 3, StripBytes: 512}
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	strips := c.Eng.Strips()
	stripBytes := 512

	// oracle[s] is the version of the last ACKED write to strip s;
	// attempted[s] is the newest version ever ISSUED. A strip must hold
	// some version in [oracle, attempted]: acked writes are durable, and
	// a write whose ack was lost in the network may legitimately have
	// landed. Workers own disjoint strips (s % workers == w) so no
	// cross-worker ordering is needed.
	const workers = 4
	oracle := make([]atomic.Int64, strips)
	attempted := make([]atomic.Int64, strips)
	pattern := func(s, ver int64) []byte {
		p := make([]byte, stripBytes)
		binary.BigEndian.PutUint64(p[0:8], uint64(s))
		binary.BigEndian.PutUint64(p[8:16], uint64(ver))
		for i := 16; i < len(p); i++ {
			p[i] = byte(int64(i)*seed + s + ver)
		}
		return p
	}

	// Preload every strip at version 0 so reads always have content.
	for s := int64(0); s < strips; s++ {
		if err := c.Eng.WriteStrip(s, pattern(s, 0)); err != nil {
			t.Fatalf("preload %d: %v", s, err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writeErrs atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ver := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for s := int64(w); s < strips; s += workers {
					ver++
					attempted[s].Store(ver)
					// Retry until acked — even across the stop signal, so
					// no worker abandons a half-committed write (stop only
					// fires once the cluster is healed, so the drain is
					// quick). An errored write is not in the oracle; an
					// acked one must be durable forever.
					for attempt := 0; ; attempt++ {
						if err := c.Eng.WriteStrip(s, pattern(s, ver)); err == nil {
							oracle[s].Store(ver)
							break
						}
						writeErrs.Add(1)
						if attempt > 2000 {
							t.Errorf("worker %d: strip %d never acked", w, s)
							return
						}
						time.Sleep(5 * time.Millisecond)
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}(w)
	}

	// Phase 1: asymmetric partition on beta — writes reach the node but
	// acks are dropped, so workers see errors and re-send. Shorter than
	// the grace window: beta must come back, not be declared lost.
	time.Sleep(100 * time.Millisecond)
	tc.faults["beta"].SetPartition(netdev.PartAsym)

	// Foreground reads during the partition must succeed via degraded
	// reconstruction once the quarantine engages.
	readDeadline := time.Now().Add(500 * time.Millisecond)
	okReads := 0
	for time.Now().Before(readDeadline) {
		s := int64(okReads) % strips
		if _, err := c.Eng.ReadStrip(s); err == nil {
			okReads++
		}
		time.Sleep(2 * time.Millisecond)
	}
	if okReads == 0 {
		t.Fatalf("no foreground read succeeded during asymmetric partition")
	}
	tc.faults["beta"].SetPartition(netdev.PartNone)
	if c.Client("beta").Lost() {
		t.Fatalf("beta declared lost during a sub-grace partition")
	}

	// Phase 2: kill gamma for good. Grace elapses, the node is declared
	// lost, its disks are evicted, and replacements land on survivors.
	time.Sleep(100 * time.Millisecond)
	tc.faults["gamma"].SetPartition(netdev.PartDrop)
	healDeadline := time.Now().Add(45 * time.Second)
	for time.Now().Before(healDeadline) {
		st := c.Eng.Status()
		if len(c.DisksOn("gamma")) == 0 && len(st.Failed) == 0 && !c.Eng.Rebuilding() {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !c.Client("gamma").Lost() {
		t.Fatalf("gamma never declared lost")
	}
	if moved := c.DisksOn("gamma"); len(moved) != 0 {
		t.Fatalf("disks still placed on gamma after heal: %v", moved)
	}

	// Let workers run a little longer against the healed topology, then
	// stop and verify the oracle.
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	c.Eng.RebuildWait()
	t.Logf("seed %d: %d write errors absorbed by retry, %d ok degraded reads",
		seed, writeErrs.Load(), okReads)

	verify := func(e interface {
		ReadStrip(int64) ([]byte, error)
	}, when string) {
		for s := int64(0); s < strips; s++ {
			got, err := e.ReadStrip(s)
			if err != nil {
				t.Fatalf("%s: read %d: %v", when, s, err)
			}
			gotVer := int64(binary.BigEndian.Uint64(got[8:16]))
			gotS := int64(binary.BigEndian.Uint64(got[0:8]))
			acked, issued := oracle[s].Load(), attempted[s].Load()
			if gotVer < acked || gotVer > issued {
				t.Fatalf("%s: strip %d: version %d outside [acked %d, attempted %d] (s-field %d, pattern-match %v)",
					when, s, gotVer, acked, issued, gotS, bytes.Equal(got, pattern(s, gotVer)))
			}
			if !bytes.Equal(got, pattern(s, gotVer)) {
				t.Fatalf("%s: strip %d: content does not match any issued write", when, s)
			}
		}
	}
	verify(c.Eng, "after heal")
	rep, err := c.Eng.Fsck(context.Background(), false)
	if err != nil || !rep.Clean {
		t.Fatalf("fsck after heal: %v %+v", err, rep)
	}

	// Close seals through the surviving nodes; gamma's superblock has
	// been rebound to a survivor, so the seal must succeed cleanly.
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Remount from the persisted manifest: gamma still dark. The mount
	// must come up from the surviving placements alone.
	ropts := tc.options(seed + 1)
	ropts.Client.Timeout = 250 * time.Millisecond
	ropts.Client.Grace = 700 * time.Millisecond
	ropts.Format = nil
	c2, err := Open(ropts)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	defer c2.Close()
	if !c2.Mount.WasClean {
		t.Fatalf("remount after clean close saw an unclean seal")
	}
	verify(c2.Eng, "after remount")
	rep, err = c2.Eng.Fsck(context.Background(), false)
	if err != nil || !rep.Clean {
		t.Fatalf("fsck after remount: %v %+v", err, rep)
	}
}

// TestClusterDegradedReadsDuringPartition pins the transient-vs-lost
// distinction: a full partition shorter than the grace window must not
// evict anything — reads keep flowing via reconstruction, and the node
// rejoins with its data intact when the partition lifts.
func TestClusterDegradedReadsDuringPartition(t *testing.T) {
	tc := newTestCluster(t, 41)
	opts := tc.options(41)
	opts.Client.Grace = 5 * time.Second // far beyond the test's horizon
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()

	data := make([]byte, 512)
	for s := int64(0); s < c.Eng.Strips(); s++ {
		for i := range data {
			data[i] = byte(int64(i)*41 + s)
		}
		if err := c.Eng.WriteStrip(s, data); err != nil {
			t.Fatalf("write %d: %v", s, err)
		}
	}

	tc.faults["alpha"].SetPartition(netdev.PartDrop)
	// First touches trip the breaker and quarantine alpha's disks; after
	// that every strip must read back correctly via reconstruction.
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		lastErr = nil
		for s := int64(0); s < c.Eng.Strips(); s++ {
			buf, err := c.Eng.ReadStrip(s)
			if err != nil {
				lastErr = err
				break
			}
			for i := range data {
				data[i] = byte(int64(i)*41 + s)
			}
			if !bytes.Equal(buf, data) {
				t.Fatalf("strip %d corrupt during partition", s)
			}
		}
		if lastErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("degraded reads never converged: %v", lastErr)
	}
	if c.Client("alpha").Lost() {
		t.Fatalf("alpha declared lost inside grace window")
	}
	if st := c.Eng.Status(); len(st.Failed) != 0 {
		t.Fatalf("transient partition evicted disks: %v", st.Failed)
	}
	// Writes to alpha's strips while partitioned fail with the
	// unreachable sentinel — transient, never permanent.
	var werr error
	for s := int64(0); s < c.Eng.Strips(); s++ {
		if werr = c.Eng.WriteStrip(s, data); werr != nil {
			break
		}
	}
	if werr != nil {
		if !errors.Is(werr, store.ErrUnreachable) && !errors.Is(werr, store.ErrTransient) {
			t.Fatalf("partitioned write error = %v, want unreachable/transient", werr)
		}
	}

	// Lift the partition: the prober brings alpha back, quarantine
	// releases, and full-stripe writes succeed again.
	tc.faults["alpha"].SetPartition(netdev.PartNone)
	recovered := false
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if !c.Client("alpha").Down() {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("alpha never recovered after partition lift")
	}
	for s := int64(0); s < c.Eng.Strips(); s++ {
		for i := range data {
			data[i] = byte(int64(i)*43 + s)
		}
		if err := c.Eng.WriteStrip(s, data); err != nil {
			t.Fatalf("write %d after rejoin: %v", s, err)
		}
	}
	rep, err := c.Eng.Fsck(context.Background(), false)
	if err != nil || !rep.Clean {
		t.Fatalf("fsck after rejoin: %v %+v", err, rep)
	}
}
