package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/oiraid/oiraid/internal/engine"
	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
	"github.com/oiraid/oiraid/internal/testutil"
)

// testCluster is three mem-backed storage nodes behind fault-injecting
// transports, plus the coordinator options to mount across them.
type testCluster struct {
	nodes  []*netdev.Node
	srvs   []*httptest.Server
	faults map[string]*netdev.FaultTransport
	specs  []NodeSpec
	dir    string
}

func newTestCluster(t *testing.T, seed int64) *testCluster {
	t.Helper()
	tc := &testCluster{faults: map[string]*netdev.FaultTransport{}, dir: t.TempDir()}
	for i := 0; i < 3; i++ {
		id := []string{"alpha", "beta", "gamma"}[i]
		n := netdev.NewMemNode(id)
		srv := httptest.NewServer(n.Handler())
		t.Cleanup(srv.Close)
		tc.nodes = append(tc.nodes, n)
		tc.srvs = append(tc.srvs, srv)
		tc.specs = append(tc.specs, NodeSpec{ID: id, URL: srv.URL})
		tc.faults[id] = netdev.NewFaultTransport(nil, seed+int64(i))
	}
	return tc
}

func (tc *testCluster) options(seed int64) Options {
	return Options{
		Dir:   tc.dir,
		Nodes: tc.specs,
		Client: netdev.Options{
			Timeout:          400 * time.Millisecond,
			MaxAttempts:      3,
			BaseDelay:        time.Millisecond,
			MaxDelay:         5 * time.Millisecond,
			BreakerThreshold: 4,
			BreakerCooldown:  40 * time.Millisecond,
			ProbeInterval:    25 * time.Millisecond,
			Grace:            800 * time.Millisecond,
			Seed:             seed,
		},
		Engine: engine.Options{
			Workers: 4,
			Health: &engine.HealthPolicy{
				EvictAfter:        3,
				RebuildBatch:      1,
				QuarantineProbe:   30 * time.Millisecond,
				QuarantineProbeOK: 2,
			},
		},
		Transport: func(n NodeSpec) http.RoundTripper {
			// A typed nil in the interface would panic in RoundTrip; nodes
			// without a registered fault transport get the default one.
			if f := tc.faults[n.ID]; f != nil {
				return f
			}
			return nil
		},
		Format: &FormatSpec{Disks: 9, Cycles: 2, StripBytes: 512},
	}
}

func TestClusterFormatMountRemount(t *testing.T) {
	tc := newTestCluster(t, 1)
	c, err := Open(tc.options(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// Placement: round-robin, so each node holds a provably recoverable
	// disk set.
	for i, id := range []string{"alpha", "beta", "gamma"} {
		disks := c.DisksOn(id)
		want := []int{i, i + 3, i + 6}
		if len(disks) != 3 || disks[0] != want[0] || disks[1] != want[1] || disks[2] != want[2] {
			t.Fatalf("node %s holds %v, want %v", id, disks, want)
		}
	}

	data := make([]byte, 512)
	for s := int64(0); s < c.Eng.Strips(); s++ {
		for i := range data {
			data[i] = byte(int64(i) + s)
		}
		if err := c.Eng.WriteStrip(s, data); err != nil {
			t.Fatalf("write %d: %v", s, err)
		}
	}
	rep, err := c.Eng.Fsck(context.Background(), false)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if !rep.Clean {
		t.Fatalf("fsck dirty after plain writes: %+v", rep)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Remount from the persisted manifest + remote superblocks.
	opts := tc.options(2)
	opts.Format = nil
	c2, err := Open(opts)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	defer c2.Close()
	if !c2.Mount.WasClean {
		t.Fatalf("remount did not see a clean seal")
	}
	got := make([]byte, 512)
	for s := int64(0); s < c2.Eng.Strips(); s++ {
		buf, err := c2.Eng.ReadStrip(s)
		if err != nil {
			t.Fatalf("read %d: %v", s, err)
		}
		for i := range got {
			got[i] = byte(int64(i) + s)
		}
		if !bytes.Equal(buf, got) {
			t.Fatalf("strip %d differs after remount", s)
		}
	}
}

func TestClusterNodeLostHealsOntoSurvivors(t *testing.T) {
	tc := newTestCluster(t, 3)
	opts := tc.options(3)
	opts.Client.Grace = 300 * time.Millisecond
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()

	data := make([]byte, 512)
	for s := int64(0); s < c.Eng.Strips(); s++ {
		for i := range data {
			data[i] = byte(int64(i)*3 + s)
		}
		if err := c.Eng.WriteStrip(s, data); err != nil {
			t.Fatalf("write %d: %v", s, err)
		}
	}

	// Kill node beta for good: full partition, never lifted.
	tc.faults["beta"].SetPartition(netdev.PartDrop)

	// Drive ops until the grace window elapses, the client declares the
	// node lost, and the monitor evicts beta's disks; the heal loop then
	// provisions replacements on alpha/gamma and rebuilds.
	deadline := time.Now().Add(30 * time.Second)
	var sawUnreachable bool
	for time.Now().Before(deadline) {
		for s := int64(0); s < c.Eng.Strips(); s++ {
			c.Eng.ReadStrip(s)
		}
		if !sawUnreachable {
			for _, d := range c.Eng.Health().Disks {
				if d.UnreachableErrors > 0 {
					sawUnreachable = true
					break
				}
			}
		}
		st := c.Eng.Status()
		if len(c.DisksOn("beta")) == 0 && len(st.Failed) == 0 && !c.Eng.Rebuilding() {
			// Healed: every placement moved off beta, nothing degraded.
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !c.Client("beta").Lost() {
		t.Fatalf("beta never declared lost")
	}
	c.Eng.RebuildWait()
	if st := c.Eng.Status(); len(st.Failed) != 0 {
		t.Fatalf("array still degraded after heal: %v", st.Failed)
	}

	// Every one of beta's disks must have moved to a surviving node.
	if moved := c.DisksOn("beta"); len(moved) != 0 {
		t.Fatalf("disks still placed on lost node: %v", moved)
	}
	man := c.ManifestSnapshot()
	for d, p := range man.Disks {
		if p.Node == "beta" {
			t.Fatalf("manifest still places disk %d on beta", d)
		}
		if !strings.HasPrefix(p.Device, "disk") {
			t.Fatalf("placement %d device %q", d, p.Device)
		}
	}

	// Data is bit-identical after the heal, reads served with beta gone.
	for s := int64(0); s < c.Eng.Strips(); s++ {
		buf, err := c.Eng.ReadStrip(s)
		if err != nil {
			t.Fatalf("read %d after heal: %v", s, err)
		}
		for i := range data {
			data[i] = byte(int64(i)*3 + s)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("strip %d differs after heal", s)
		}
	}
	rep, err := c.Eng.Fsck(context.Background(), false)
	if err != nil || !rep.Clean {
		t.Fatalf("fsck after heal: %v %+v", err, rep)
	}
	// Unreachability was counted distinctly (sampled mid-partition —
	// adopt() resets counters when replacements take over).
	if !sawUnreachable {
		t.Fatalf("no unreachable errors recorded during partition")
	}
}

func TestClusterCloseLeavesNoGoroutines(t *testing.T) {
	tc := newTestCluster(t, 5)
	guard := testutil.NewLeakGuard()
	c, err := Open(tc.options(5))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	data := make([]byte, 512)
	for s := int64(0); s < 8; s++ {
		if err := c.Eng.WriteStrip(s, data); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	// Put one node into a down episode so its prober and callbacks are
	// live at Close time — the drain must reap them.
	tc.faults["gamma"].SetPartition(netdev.PartDrop)
	for s := int64(0); s < 8; s++ {
		c.Eng.ReadStrip(s)
	}
	// The seal cannot reach gamma's superblock, so Close reports the
	// unreachable write — but it must still drain and close every client.
	if err := c.Close(); err != nil && !errors.Is(err, store.ErrUnreachable) {
		t.Fatalf("close: %v", err)
	}
	guard.Check(t)
	if err := c.Eng.WriteStrip(0, data); !errors.Is(err, store.ErrClosed) && !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}
