// Package cluster assembles an OI-RAID array whose disks live on remote
// storage nodes (internal/store/netdev) and runs the engine over it —
// the coordinator half of multi-node OI-RAID.
//
// Failure-domain mapping: disks are placed round-robin across nodes
// (disk d on node d mod N), so the disks of one node form a set the
// 9-disk OI-RAID geometry provably recovers from — losing a whole node
// is survivable by construction, and the two-layer BIBD declustering
// spreads the rebuild load over every surviving disk.
//
// Reachability handling composes three existing mechanisms:
//
//   - Node down (transient): the NodeClient's OnDown hook quarantines
//     the node's disks, so foreground reads reconstruct around them
//     (store.Array read-avoid) instead of stalling on retries; writes
//     keep being attempted and return store.ErrUnreachable, which the
//     health monitor deliberately does not count toward eviction.
//   - Node back (OnUp): the quarantines are released and the disks
//     serve reads again — no rebuild, nothing was evicted.
//   - Node lost (grace window elapsed): operations turn into permanent
//     errors, the monitor evicts the node's disks, and the engine's
//     heal path rebuilds them onto replacement devices provisioned on
//     surviving nodes — with each replacement's superblock blob rebound
//     alongside (ArrayMeta.RebindSuperblock), so the metadata plane
//     follows the data off the dead node.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oiraid/oiraid/internal/bibd"
	"github.com/oiraid/oiraid/internal/core"
	"github.com/oiraid/oiraid/internal/engine"
	"github.com/oiraid/oiraid/internal/layout"
	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
)

// NodeSpec names one storage node.
type NodeSpec struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Placement records where one disk lives.
type Placement struct {
	Node   string `json:"node"`   // node ID
	Device string `json:"device"` // device name on that node
	Super  string `json:"super"`  // superblock blob name on that node
}

// Manifest is the coordinator's persisted cluster map: which nodes
// exist and where each disk (and its superblock copy) currently lives.
// It is a bootstrap hint, not the source of truth — the mount still
// assembles from the superblocks themselves (media-authoritative), so a
// stale manifest entry surfaces as a failed disk, never as silent
// corruption.
type Manifest struct {
	Nodes      []NodeSpec  `json:"nodes"`
	Disks      []Placement `json:"disks"`
	Cycles     int64       `json:"cycles"`
	StripBytes int         `json:"strip_bytes"`
	// Epoch records the fencing epoch of the coordinator that wrote
	// this manifest (0 outside HA mode) — an audit trail for fsck and
	// takeover debugging, not an input to recovery.
	Epoch uint64 `json:"epoch,omitempty"`
	// Degraded is the array's degradation policy ("refuse", "read-only",
	// "partial") — what a mount does when the committed failure pattern
	// is beyond tolerance. Empty means refuse (the historic behaviour).
	// It is stamped into the superblocks at format and also applied as a
	// per-mount override, so a manifest edit can relax the policy of an
	// array formatted before the field existed.
	Degraded string `json:"degraded_policy,omitempty"`
}

// ParseManifest decodes and sanity-checks a manifest image. Recovery
// reads replicas that may be torn mid-save, so structural validation is
// what separates "the last acked manifest" from "half a JSON object".
func ParseManifest(raw []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("cluster: manifest: %w", err)
	}
	if len(m.Nodes) == 0 {
		return Manifest{}, errors.New("cluster: manifest has no nodes")
	}
	if len(m.Disks) == 0 {
		return Manifest{}, errors.New("cluster: manifest has no disks")
	}
	if m.Cycles <= 0 || m.StripBytes <= 0 {
		return Manifest{}, fmt.Errorf("cluster: manifest geometry %d cycles × %d strip bytes", m.Cycles, m.StripBytes)
	}
	ids := map[string]bool{}
	for _, n := range m.Nodes {
		if n.ID == "" {
			return Manifest{}, errors.New("cluster: manifest node with empty ID")
		}
		if ids[n.ID] {
			return Manifest{}, fmt.Errorf("cluster: duplicate node %q", n.ID)
		}
		ids[n.ID] = true
	}
	for d, p := range m.Disks {
		if !ids[p.Node] {
			return Manifest{}, fmt.Errorf("cluster: disk %d placed on unknown node %q", d, p.Node)
		}
		if p.Device == "" || p.Super == "" {
			return Manifest{}, fmt.Errorf("cluster: disk %d missing device or superblock name", d)
		}
	}
	if _, err := store.ParseDegradedPolicy(m.Degraded); err != nil {
		return Manifest{}, fmt.Errorf("cluster: manifest: %w", err)
	}
	return m, nil
}

// FormatSpec sizes a new cluster array.
type FormatSpec struct {
	Disks      int
	Cycles     int64
	StripBytes int
	// Degraded is the degradation policy stamped into the superblocks:
	// what a mount does when the failure pattern is beyond tolerance
	// (default DegradedRefuse).
	Degraded store.DegradedPolicy
}

// Options configures Open.
type Options struct {
	// Dir is the coordinator's state directory: cluster.json (the
	// manifest) and the metadata journal live here. Empty runs volatile
	// (in-memory journal, manifest not persisted) — tests only.
	Dir string
	// Nodes lists the storage nodes. Required when no manifest exists.
	Nodes []NodeSpec
	// Client is the per-node client template; ExpectID is filled per
	// node, Seed is offset per node.
	Client netdev.Options
	// Engine configures the engine. Health must be set for a cluster
	// (the quarantine probe loop drives partition recovery); Open
	// installs a default policy when it is nil. Replace is overridden
	// by the cluster's own provisioner.
	Engine engine.Options
	// Transport, when set, supplies the HTTP transport per node — the
	// fault-injection hook for partition tests.
	Transport func(NodeSpec) http.RoundTripper
	// Format, when set and no cluster state exists yet, formats a new
	// array of this size across the nodes.
	Format *FormatSpec
	// Holder, when non-empty, runs the coordinator in HA mode under
	// this identity: it acquires a fenced lease from a node quorum at
	// open (deposing any previous coordinator), replicates every
	// manifest commit and metadata-journal append to a majority of
	// nodes before acking, and renews the lease so a standby can
	// detect its death. Empty keeps the classic single-coordinator
	// behavior. HA mode requires Nodes (the manifest itself lives
	// behind the quorum, so the node list must come from config).
	Holder string
	// LeaseRenew is the lease renewal interval in HA mode
	// (default 100ms).
	LeaseRenew time.Duration

	// onMigrateResume, when set (tests), observes every migration record
	// the resume path picks up, before the migration continues.
	onMigrateResume func(MigrationRecord)
}

// Cluster is a mounted multi-node array: the engine plus the node
// clients it rides on.
type Cluster struct {
	Eng   *engine.Engine
	Mount *store.Mount

	dir      string
	mu       sync.Mutex // guards manifest + persisted file + clients/order
	manifest Manifest

	clients map[string]*netdev.NodeClient // node ID → client
	order   []string                      // node IDs in manifest order
	// retired holds clients for nodes that left the membership (drain)
	// or were replaced by a fresh client (rejoin after lost): they stay
	// open until Close — in HA mode the replicator may still count them
	// as metadata voters for the rest of the reign.
	retired []*netdev.NodeClient

	replaceSeq atomic.Int64 // suffix for replacement device names

	// Client-template state for building clients after Open (AddNode,
	// RejoinNode): the option template, the per-node transport hook, the
	// shared fence (HA only, nil otherwise), and the seed counter that
	// keeps jitter streams de-correlated across clients.
	copts     netdev.Options
	transport func(NodeSpec) http.RoundTripper
	fence     *netdev.FenceToken
	nodeSeq   atomic.Int64
	engPtr    atomic.Pointer[engine.Engine]

	// Membership/migration state. memberMu serialises membership
	// operations (one migration plan at a time); draining marks nodes
	// that must not receive new placements while their disks move off.
	memberMu sync.Mutex
	draining map[string]bool // guarded by mu
	migStop  chan struct{}
	stopMig  sync.Once
	migWg    sync.WaitGroup
	// onMigrateResume, when set (tests), observes every migration record
	// picked up by the resume path before it continues.
	onMigrateResume func(MigrationRecord)

	// HA mode (nil/zero in classic mode).
	rep        *replicator
	manGen     uint64 // manifest blob generation, guarded by mu
	leaseEvery time.Duration
	renewStop  chan struct{}
	stopRenew  sync.Once
	renewWg    sync.WaitGroup
}

// Open mounts (or formats) the cluster array and starts the engine.
// With Options.Holder set this is also the takeover path: acquire a
// fenced lease at a fresh epoch, reassemble the metadata plane from the
// node quorum, and resume — a standby calls exactly this.
func Open(opts Options) (*Cluster, error) {
	ha := opts.Holder != ""
	c := &Cluster{dir: opts.Dir, clients: map[string]*netdev.NodeClient{}}
	if ha {
		if len(opts.Nodes) == 0 {
			return nil, errors.New("cluster: HA mode requires the node list")
		}
		c.leaseEvery = opts.LeaseRenew
		if c.leaseEvery <= 0 {
			c.leaseEvery = defaultLeaseRenew
		}
		c.renewStop = make(chan struct{})
	}

	// Local manifest: a bootstrap cache. In HA mode the quorum copy
	// recovered below overrides it; classic mode trusts it outright.
	loaded, err := c.loadManifest()
	if err != nil {
		return nil, err
	}
	nodeList := opts.Nodes
	if !ha && loaded {
		nodeList = c.manifest.Nodes
	}
	if !loaded && !ha {
		if opts.Format == nil {
			return nil, errors.New("cluster: no manifest and no format spec")
		}
		if len(opts.Nodes) == 0 {
			return nil, errors.New("cluster: no nodes")
		}
		c.manifest = buildManifest(opts.Nodes, *opts.Format)
	}

	// One client per node. The engine does not exist yet, so the
	// reachability hooks go through an atomic pointer filled in below.
	// The template state is kept on the Cluster so membership changes
	// can build identically-configured clients after Open.
	c.copts = opts.Client
	c.transport = opts.Transport
	c.draining = map[string]bool{}
	c.migStop = make(chan struct{})
	c.onMigrateResume = opts.onMigrateResume
	fence := &netdev.FenceToken{}
	if ha {
		c.fence = fence
	}
	for _, n := range nodeList {
		cl := c.newClientLocked(n)
		c.clients[n.ID] = cl
		c.order = append(c.order, n.ID)
	}
	closeClients := func() {
		for _, cl := range c.clients {
			cl.Close()
		}
	}

	// HA: fenced takeover — lease first (deposing any rival), then the
	// metadata plane from the quorum. The journal blobs come back
	// quorum-wrapped, so every append below is majority-durable before
	// it acks.
	var j0, j1 store.Blob
	if ha {
		// The replicator gets its own snapshot of the membership: the
		// metadata voter set is fixed for the reign even if AddNode or
		// DrainNode changes the data-plane node list afterwards.
		repClients := make(map[string]*netdev.NodeClient, len(c.clients))
		for id, cl := range c.clients {
			repClients[id] = cl
		}
		c.rep = &replicator{holder: opts.Holder, fence: fence,
			order: append([]string(nil), c.order...), clients: repClients}
		var haveManifest bool
		j0, j1, haveManifest, err = c.takeover(loaded)
		if err != nil {
			closeClients()
			return nil, err
		}
		if !haveManifest {
			if opts.Format == nil {
				closeClients()
				j0.Close()
				j1.Close()
				return nil, errors.New("cluster: no manifest anywhere and no format spec")
			}
			c.manifest = buildManifest(opts.Nodes, *opts.Format)
		}
		loaded = haveManifest
		if err := nodesMatch(c.manifest.Nodes, opts.Nodes); err != nil {
			closeClients()
			j0.Close()
			j1.Close()
			return nil, err
		}
	}
	man := c.manifest

	// Geometry: disks count from the manifest placements.
	an, err := analyzerFor(len(man.Disks))
	if err != nil {
		closeClients()
		return nil, err
	}
	strips := man.Cycles * int64(an.SlotsPerDisk())

	// Bind devices and superblock blobs per placement.
	devs := make([]store.Device, len(man.Disks))
	sbs := make([]store.Blob, len(man.Disks))
	for d, p := range man.Disks {
		cl, ok := c.clients[p.Node]
		if !ok {
			closeClients()
			return nil, fmt.Errorf("cluster: disk %d placed on unknown node %q", d, p.Node)
		}
		if loaded {
			// Bind blind: geometry comes from the manifest, verification
			// from the superblocks at mount. Asking the node here would
			// make an unreachable node block a degraded mount.
			devs[d], sbs[d] = cl.Device(p.Device, strips, man.StripBytes), cl.Blob(p.Super)
		} else {
			devs[d], err = cl.CreateDevice(p.Device, strips, man.StripBytes)
			if err == nil {
				sbs[d], err = cl.CreateBlob(p.Super)
			}
		}
		if err != nil {
			closeClients()
			return nil, fmt.Errorf("cluster: disk %d on node %s: %w", d, p.Node, err)
		}
	}

	// Classic mode: the metadata journal is coordinator-local state —
	// the coordinator's own write-ahead record, not array media. (HA
	// mode replaced this above with quorum-replicated blobs, where the
	// local file is only the read cache.)
	if !ha {
		if c.dir != "" {
			if j0, err = store.CreateFileBlob(filepath.Join(c.dir, "meta0.journal")); err != nil {
				closeClients()
				return nil, err
			}
			if j1, err = store.CreateFileBlob(filepath.Join(c.dir, "meta1.journal")); err != nil {
				closeClients()
				return nil, err
			}
		} else {
			j0, j1 = store.NewMemBlob(), store.NewMemBlob()
		}
	}

	// Degradation policy: the manifest's word applies at format (stamped
	// into the superblocks) and as the per-mount override, so editing the
	// manifest relaxes the policy of arrays formatted before the
	// superblock carried one.
	policy, err := store.ParseDegradedPolicy(man.Degraded)
	if err != nil {
		closeClients()
		return nil, fmt.Errorf("cluster: manifest: %w", err)
	}
	var mnt *store.Mount
	if loaded {
		var mos []store.MountOption
		if man.Degraded != "" {
			mos = append(mos, store.WithMountDegradedPolicy(policy))
		}
		mnt, err = store.MountArray(an, devs, sbs, j0, j1, mos...)
	} else {
		mnt, err = store.FormatArray(an, devs, sbs, j0, j1, store.WithDegradedPolicy(policy))
	}
	if err != nil {
		closeClients()
		return nil, fmt.Errorf("cluster: %w", err)
	}

	eopts := opts.Engine
	if eopts.Health == nil {
		eopts.Health = &engine.HealthPolicy{}
	}
	eopts.Replace = c.provisionReplacement
	eng, err := engine.New(mnt.Array, eopts)
	if err != nil {
		closeClients()
		return nil, err
	}
	c.engPtr.Store(eng)
	// Node clients close at the very end of engine shutdown: the seal
	// writes superblocks through them, and the drain guarantees no
	// probe/callback goroutine outlives Close. Retired clients (nodes
	// drained or replaced after a rejoin) close here too — they may have
	// stayed metadata voters for the reign.
	eng.OnClose(func() error {
		c.mu.Lock()
		cls := make([]*netdev.NodeClient, 0, len(c.clients)+len(c.retired))
		for _, id := range c.order {
			cls = append(cls, c.clients[id])
		}
		cls = append(cls, c.retired...)
		c.mu.Unlock()
		var first error
		for _, cl := range cls {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	})

	c.Eng = eng
	c.Mount = mnt
	// Replacement names must not collide across coordinator restarts:
	// continue from the count of non-original placements.
	c.replaceSeq.Store(int64(replacementCount(man)))
	// Persist the manifest when it is new — and always in HA mode,
	// which stamps the new epoch and reseeds the quorum copy.
	if !loaded || ha {
		if err := c.saveManifest(); err != nil {
			eng.Close()
			return nil, err
		}
	}
	if ha {
		c.renewWg.Add(1)
		go c.renewLoop()
	}
	// Resume any migration a previous coordinator (or a previous run of
	// this one) left mid-flight: the records are quorum-committed KV
	// entries, so the successor picks up from the last committed range.
	c.resumeMigrations()
	// A node that was already unreachable at mount shows up as failed
	// disks (the mount detected their superblocks missing); the engine
	// heals them like any other failure once ops start flowing.
	return c, nil
}

// newClientLocked builds a node client from the stored template. Safe
// before the Cluster is published (Open) or with c.mu held.
func (c *Cluster) newClientLocked(n NodeSpec) *netdev.NodeClient {
	idx := c.nodeSeq.Add(1) - 1
	copts := c.copts
	copts.ExpectID = n.ID
	copts.Seed = c.copts.Seed + idx*7919
	if c.transport != nil {
		copts.Transport = c.transport(n)
	}
	id := n.ID
	copts.OnDown = func() { c.nodeDown(c.engPtr.Load(), id) }
	copts.OnUp = func() { c.nodeUp(c.engPtr.Load(), id) }
	cl := netdev.NewNodeClient(n.URL, copts)
	if c.fence != nil {
		cl.SetFence(c.fence)
	}
	return cl
}

// Close shuts the engine down (which seals metadata, then closes the
// node clients via the OnClose hook). In HA mode the lease renewal
// loop stops first — the seal's journal appends still replicate, and
// no renewal goroutine may outlive Close.
func (c *Cluster) Close() error {
	// Migrations first: their copy loops pace on migStop, so they park
	// their records (quorum-committed cursor) and exit promptly; the next
	// open resumes them.
	c.stopMig.Do(func() { close(c.migStop) })
	c.migWg.Wait()
	if c.renewStop != nil {
		c.stopRenew.Do(func() { close(c.renewStop) })
		c.renewWg.Wait()
	}
	return c.Eng.Close()
}

// Client returns the node client for id (tests, CLI surfacing).
func (c *Cluster) Client(id string) *netdev.NodeClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clients[id]
}

// Manifest returns a copy of the current cluster map.
func (c *Cluster) ManifestSnapshot() Manifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.manifest
	m.Nodes = append([]NodeSpec(nil), c.manifest.Nodes...)
	m.Disks = append([]Placement(nil), c.manifest.Disks...)
	return m
}

// DisksOn lists the disk indices currently placed on node id.
func (c *Cluster) DisksOn(id string) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for d, p := range c.manifest.Disks {
		if p.Node == id {
			out = append(out, d)
		}
	}
	return out
}

// nodeDown quarantines every disk on the node: reads reconstruct around
// them (the partition would otherwise stall every read that lands on
// the node for a full retry budget), writes keep probing the path.
func (c *Cluster) nodeDown(eng *engine.Engine, id string) {
	if eng == nil {
		return
	}
	for _, d := range c.DisksOn(id) {
		_ = eng.QuarantineDisk(d) // best effort; closed engine says no
		// Feed the serving-mode computation: enough downed paths across
		// nodes demote the array to read-only/partial service from the
		// survivors instead of acking writes it cannot protect.
		_ = eng.SetDiskDown(d, true)
	}
}

// nodeUp releases the node's quarantines: the disks were healthy the
// whole time, nothing needs rebuilding.
func (c *Cluster) nodeUp(eng *engine.Engine, id string) {
	if eng == nil {
		return
	}
	for _, d := range c.DisksOn(id) {
		_ = eng.ReleaseDisk(d)
		// Clearing the down-mark recomputes the serving mode toward
		// normal and re-kicks a rebuild the partition starved.
		_ = eng.SetDiskDown(d, false)
	}
	// A down episode can leave half-committed parity closures: a commit
	// whose write to this node failed (or whose ack was lost) left its
	// redo record pending. Replay them now that the node is back so
	// every stripe is self-consistent again — the cluster's equivalent
	// of a post-rejoin resync.
	eng.Array().RecoverIntent()
}

// provisionReplacement is the engine's Replace hook: a new device for
// disk d on a surviving node, with the superblock copy rebound next to
// it and the manifest updated — the step that moves a dead node's disk
// to live hardware.
func (c *Cluster) provisionReplacement(d int) (store.Device, error) {
	c.mu.Lock()
	if d < 0 || d >= len(c.manifest.Disks) {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: disk %d", store.ErrNoSuchDisk, d)
	}
	// Pick the surviving node with the fewest disks (ties broken by
	// manifest order) so replacements spread instead of piling onto one
	// node.
	load := map[string]int{}
	for _, p := range c.manifest.Disks {
		load[p.Node]++
	}
	best := ""
	for _, id := range c.order {
		cl := c.clients[id]
		if cl.Lost() || cl.Down() || c.draining[id] {
			continue
		}
		if best == "" || load[id] < load[best] {
			best = id
		}
	}
	cl := c.clients[best]
	c.mu.Unlock()
	if best == "" {
		return nil, fmt.Errorf("%w: no reachable node for replacement of disk %d", store.ErrUnreachable, d)
	}

	seq := c.replaceSeq.Add(1)
	devName := fmt.Sprintf("disk%02d-r%d", d, seq)
	sbName := fmt.Sprintf("sb%02d-r%d", d, seq)
	an := c.Mount.Array.Analyzer()
	strips := c.Mount.Array.Cycles() * int64(an.SlotsPerDisk())
	dev, err := cl.CreateDevice(devName, strips, c.Mount.Array.StripBytes())
	if err != nil {
		return nil, fmt.Errorf("cluster: provision disk %d on %s: %w", d, best, err)
	}
	sb, err := cl.CreateBlob(sbName)
	if err != nil {
		return nil, fmt.Errorf("cluster: provision superblock %d on %s: %w", d, best, err)
	}
	if err := c.Mount.Meta.RebindSuperblock(d, sb); err != nil {
		return nil, err
	}

	c.mu.Lock()
	c.manifest.Disks[d] = Placement{Node: best, Device: devName, Super: sbName}
	err = c.saveManifestLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return dev, nil
}

func (c *Cluster) manifestPath() string { return filepath.Join(c.dir, "cluster.json") }

func (c *Cluster) loadManifest() (bool, error) {
	if c.dir == "" {
		return false, nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return false, err
	}
	raw, err := os.ReadFile(c.manifestPath())
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	m, err := ParseManifest(raw)
	if err != nil {
		return false, fmt.Errorf("%s: %w", c.manifestPath(), err)
	}
	c.manifest = m
	return true, nil
}

func (c *Cluster) saveManifest() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveManifestLocked()
}

// saveManifestLocked persists the manifest: atomically and durably to
// the local directory (tmp is fsynced before the rename, the directory
// after — a crash can never leave a torn or vanishing manifest), and in
// HA mode replicated to a node quorum at a fresh blob generation before
// the commit is acknowledged. Volatile classic clusters (no dir) keep
// it in memory only.
func (c *Cluster) saveManifestLocked() error {
	if c.rep != nil {
		c.manifest.Epoch = c.rep.fence.Epoch()
	}
	if c.dir == "" && c.rep == nil {
		return nil
	}
	raw, err := json.MarshalIndent(c.manifest, "", "  ")
	if err != nil {
		return err
	}
	if c.dir != "" {
		if err := store.AtomicWriteFile(c.manifestPath(), raw, 0o644); err != nil {
			return err
		}
	}
	if c.rep != nil {
		// Full rewrite under a bumped generation: the gen wipe replaces
		// the old image on every replica that hears about it, and the
		// quorum requirement makes the save recoverable by the next
		// coordinator.
		c.manGen++
		gen, epoch := c.manGen, c.rep.fence.Epoch()
		return c.rep.fanout(func(cl *netdev.NodeClient) error {
			if err := cl.MetaWriteAt(metaBlobManifest, raw, 0, epoch, gen); err != nil {
				return err
			}
			return cl.MetaSync(metaBlobManifest, epoch, gen)
		})
	}
	return nil
}

// buildManifest places disk d on node d mod N. For the canonical 9-disk
// geometry on 3 nodes this yields node-aligned disk sets ({0,3,6},
// {1,4,7}, {2,5,8}), each of which the layout provably recovers from.
func buildManifest(nodes []NodeSpec, spec FormatSpec) Manifest {
	m := Manifest{
		Nodes:      append([]NodeSpec(nil), nodes...),
		Cycles:     spec.Cycles,
		StripBytes: spec.StripBytes,
	}
	if spec.Degraded != store.DegradedRefuse {
		m.Degraded = spec.Degraded.String()
	}
	for d := 0; d < spec.Disks; d++ {
		m.Disks = append(m.Disks, Placement{
			Node:   nodes[d%len(nodes)].ID,
			Device: fmt.Sprintf("disk%02d", d),
			Super:  fmt.Sprintf("sb%02d", d),
		})
	}
	return m
}

// replacementCount counts placements that are not original ("diskNN")
// names, seeding the replacement sequence after a restart.
func replacementCount(m Manifest) int {
	n := 0
	for d, p := range m.Disks {
		if p.Device != fmt.Sprintf("disk%02d", d) {
			n++
		}
	}
	return n
}

// analyzerFor builds the OI-RAID analyzer for the given disk count.
func analyzerFor(disks int) (*core.Analyzer, error) {
	d, err := bibd.ForArray(disks)
	if err != nil {
		return nil, err
	}
	sch, err := layout.NewOIRAID(d)
	if err != nil {
		return nil, err
	}
	return core.NewAnalyzer(sch)
}
