package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzManifestDecode hammers ParseManifest with arbitrary bytes — the
// exact input shape quorum recovery feeds it: manifest replicas that
// may be torn mid-save, zero-filled after a generation wipe, or
// damaged on a node. The decoder must never panic, and anything it
// accepts must satisfy the invariants recovery relies on (non-empty
// node/disk sets, positive geometry, placements on known nodes) and
// survive a marshal → parse round trip unchanged.
func FuzzManifestDecode(f *testing.F) {
	// A real manifest as the coverage seed, plus the torn/wiped shapes
	// recovery actually encounters.
	good := Manifest{
		Nodes: []NodeSpec{{ID: "alpha", URL: "http://h1:7980"}, {ID: "beta", URL: "http://h2:7980"}, {ID: "gamma", URL: "http://h3:7980"}},
		Disks: []Placement{
			{Node: "alpha", Device: "disk00", Super: "sb00"},
			{Node: "beta", Device: "disk01", Super: "sb01"},
			{Node: "gamma", Device: "disk02", Super: "sb02"},
		},
		Cycles:     4,
		StripBytes: 4096,
		Epoch:      7,
	}
	raw, err := json.Marshal(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])                  // torn mid-save
	f.Add(append(raw, make([]byte, 64)...))  // acked image + stale tail
	f.Add(make([]byte, 256))                 // gen-wiped replica (all zeros)
	f.Add([]byte(`{"nodes":[],"disks":[]}`))      // structurally empty
	f.Add([]byte(`{"nodes":[{"id":"a","url":"u"},{"id":"a","url":"u"}]}`)) // dup node
	f.Add([]byte(`{"cycles":-1}`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		// Accepted → the invariants recovery depends on must hold.
		if len(m.Nodes) == 0 || len(m.Disks) == 0 {
			t.Fatalf("accepted manifest with empty nodes/disks: %+v", m)
		}
		if m.Cycles <= 0 || m.StripBytes <= 0 {
			t.Fatalf("accepted non-positive geometry: %+v", m)
		}
		ids := map[string]bool{}
		for _, n := range m.Nodes {
			if n.ID == "" || ids[n.ID] {
				t.Fatalf("accepted empty/duplicate node ID: %+v", m.Nodes)
			}
			ids[n.ID] = true
		}
		for _, p := range m.Disks {
			if !ids[p.Node] || p.Device == "" || p.Super == "" {
				t.Fatalf("accepted dangling placement %+v", p)
			}
		}
		// Round trip: what a coordinator would re-save must parse back
		// to the same manifest, or recovery on the next takeover sees a
		// different cluster than the one that was acked.
		re, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		m2, err := ParseManifest(re)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, re)
		}
		re2, err := json.Marshal(m2)
		if err != nil {
			t.Fatalf("second marshal: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("round trip diverged:\n%s\n%s", re, re2)
		}
	})
}
