package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oiraid/oiraid/internal/engine"
	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
)

// addNode boots one more mem-backed storage node (with its own fault
// transport) that a test can AddNode into a running cluster.
func (tc *testCluster) addNode(t *testing.T, seed int64, id string) NodeSpec {
	t.Helper()
	n := netdev.NewMemNode(id)
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(srv.Close)
	tc.nodes = append(tc.nodes, n)
	tc.srvs = append(tc.srvs, srv)
	tc.faults[id] = netdev.NewFaultTransport(nil, seed+int64(len(tc.faults)))
	return NodeSpec{ID: id, URL: srv.URL}
}

// preload writes a deterministic pattern to every strip and returns a
// verifier that re-derives and compares it.
func preload(t *testing.T, c *Cluster, seed int64) func(*Cluster, string) {
	t.Helper()
	data := make([]byte, 512)
	for s := int64(0); s < c.Eng.Strips(); s++ {
		for i := range data {
			data[i] = byte(int64(i)*seed + s)
		}
		if err := c.Eng.WriteStrip(s, data); err != nil {
			t.Fatalf("preload %d: %v", s, err)
		}
	}
	return func(c *Cluster, when string) {
		t.Helper()
		got := make([]byte, 512)
		for s := int64(0); s < c.Eng.Strips(); s++ {
			buf, err := c.Eng.ReadStrip(s)
			if err != nil {
				t.Fatalf("%s: read %d: %v", when, s, err)
			}
			for i := range got {
				got[i] = byte(int64(i)*seed + s)
			}
			if !bytes.Equal(buf, got) {
				t.Fatalf("%s: strip %d differs", when, s)
			}
		}
		rep, err := c.Eng.Fsck(context.Background(), false)
		if err != nil || !rep.Clean {
			t.Fatalf("%s: fsck: %v %+v", when, err, rep)
		}
	}
}

// TestClusterAddNodeRebalances: joining a fourth node migrates disks
// from the most-loaded nodes until the spread is ≤ 1, data stays
// bit-exact through the moves, and the grown membership survives a
// remount from the persisted manifest.
func TestClusterAddNodeRebalances(t *testing.T) {
	tc := newTestCluster(t, 21)
	delta := tc.addNode(t, 21, "delta")
	c, err := Open(tc.options(21))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	verify := preload(t, c, 21)

	rep, err := c.AddNode(delta)
	if err != nil {
		t.Fatalf("add node: %v", err)
	}
	// 9 disks over 4 nodes: two moves reach the ≤1 spread (2,2,3,2).
	if len(rep.Moved) != 2 || rep.Moved[0] != 6 || rep.Moved[1] != 7 {
		t.Fatalf("moved %v, want [6 7]", rep.Moved)
	}
	if got := c.DisksOn("delta"); len(got) != 2 {
		t.Fatalf("delta holds %v", got)
	}
	man := c.ManifestSnapshot()
	if len(man.Nodes) != 4 {
		t.Fatalf("manifest nodes %v", man.Nodes)
	}
	load := map[string]int{}
	for _, p := range man.Disks {
		load[p.Node]++
	}
	for id, n := range load {
		if n < 2 || n > 3 {
			t.Fatalf("node %s holds %d disks after rebalance: %v", id, n, load)
		}
	}
	if migs := c.Migrations(); len(migs) != 0 {
		t.Fatalf("migration records left behind: %+v", migs)
	}
	for _, ni := range c.NodeStatus() {
		if ni.State != "ok" {
			t.Fatalf("node %s state %q after add", ni.ID, ni.State)
		}
	}
	if _, err := c.AddNode(delta); err == nil || !strings.Contains(err.Error(), "already a member") {
		t.Fatalf("duplicate add: %v", err)
	}
	verify(c, "after add")
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Remount: the manifest carries the 4-node membership and the moved
	// placements; the mount must assemble from them.
	opts := tc.options(22)
	opts.Format = nil
	c2, err := Open(opts)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	defer c2.Close()
	if got := c2.DisksOn("delta"); len(got) != 2 {
		t.Fatalf("delta holds %v after remount", got)
	}
	verify(c2, "after remount")
}

// TestClusterDrainNode: draining migrates every disk off the node,
// removes it from the membership, and reclaims its media.
func TestClusterDrainNode(t *testing.T) {
	tc := newTestCluster(t, 23)
	c, err := Open(tc.options(23))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()
	verify := preload(t, c, 23)

	rep, err := c.DrainNode("beta")
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(rep.Moved) != 3 || rep.Moved[0] != 1 || rep.Moved[1] != 4 || rep.Moved[2] != 7 {
		t.Fatalf("moved %v, want beta's disks [1 4 7]", rep.Moved)
	}
	if got := c.DisksOn("beta"); len(got) != 0 {
		t.Fatalf("beta still holds %v", got)
	}
	man := c.ManifestSnapshot()
	if len(man.Nodes) != 2 {
		t.Fatalf("membership after drain: %v", man.Nodes)
	}
	for _, n := range man.Nodes {
		if n.ID == "beta" {
			t.Fatalf("beta still a member")
		}
	}
	if st := c.NodeStatus(); len(st) != 2 {
		t.Fatalf("node status after drain: %+v", st)
	}
	// The drained node's media was reclaimed: nothing left to leak.
	cl := netdev.NewNodeClient(tc.srvs[1].URL, netdev.Options{Timeout: time.Second})
	defer cl.Close()
	nst, err := cl.Stat()
	if err != nil {
		t.Fatalf("stat beta: %v", err)
	}
	if len(nst.Devices) != 0 || len(nst.Blobs) != 0 {
		t.Fatalf("beta media not reclaimed: %d devices, %d blobs", len(nst.Devices), len(nst.Blobs))
	}
	if _, err := c.DrainNode("beta"); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("double drain: %v", err)
	}
	verify(c, "after drain")
}

// TestMembershipValidation pins the error taxonomy of the membership
// verbs: bad specs, duplicates, unknown nodes, unreachable targets.
func TestMembershipValidation(t *testing.T) {
	tc := newTestCluster(t, 25)
	c, err := Open(tc.options(25))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()

	if _, err := c.AddNode(NodeSpec{}); err == nil || !strings.Contains(err.Error(), "needs an id") {
		t.Fatalf("empty spec: %v", err)
	}
	if _, err := c.AddNode(NodeSpec{ID: "alpha", URL: "http://x"}); err == nil || !strings.Contains(err.Error(), "already a member") {
		t.Fatalf("duplicate: %v", err)
	}
	// A node that does not answer cannot join.
	if _, err := c.AddNode(NodeSpec{ID: "ghost", URL: "http://127.0.0.1:1"}); err == nil {
		t.Fatalf("unreachable add accepted")
	}
	if _, err := c.DrainNode("nope"); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("drain unknown: %v", err)
	}
	if _, err := c.RejoinNode(NodeSpec{ID: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("rejoin unknown: %v", err)
	}
	// A dead node drains through the heal path, not DrainNode.
	tc.faults["gamma"].SetPartition(netdev.PartDrop)
	deadline := time.Now().Add(10 * time.Second)
	for !c.Client("gamma").Down() && time.Now().Before(deadline) {
		c.Client("gamma").Ping()
		time.Sleep(10 * time.Millisecond)
	}
	if !c.Client("gamma").Down() {
		t.Fatalf("gamma never went down")
	}
	if _, err := c.DrainNode("gamma"); err == nil || !strings.Contains(err.Error(), "heal, not drain") {
		t.Fatalf("drain of a dead node: %v", err)
	}
	tc.faults["gamma"].SetPartition(netdev.PartNone)
}

// TestClusterRejoinInsideGraceZeroMovement: a node that comes back
// inside the grace window was only quarantined — RejoinNode must move
// zero strips and the node serves its original placements again.
func TestClusterRejoinInsideGraceZeroMovement(t *testing.T) {
	tc := newTestCluster(t, 31)
	opts := tc.options(31)
	opts.Client.Grace = 10 * time.Second // the node must NOT be declared lost
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()
	verify := preload(t, c, 31)

	tc.faults["beta"].SetPartition(netdev.PartDrop)
	downDeadline := time.Now().Add(10 * time.Second)
	for !c.Client("beta").Down() && time.Now().Before(downDeadline) {
		c.Client("beta").Ping() // trip a live down episode
		time.Sleep(5 * time.Millisecond)
	}
	if !c.Client("beta").Down() {
		t.Fatalf("beta never entered a down episode")
	}
	// Rejoin while the node is merely down: zero movement, by contract.
	rep, err := c.RejoinNode(NodeSpec{ID: "beta"})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if len(rep.Moved) != 0 {
		t.Fatalf("rejoin inside grace moved %v, want zero movement", rep.Moved)
	}
	tc.faults["beta"].SetPartition(netdev.PartNone)
	deadline := time.Now().Add(10 * time.Second)
	for c.Client("beta").Down() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.Client("beta").Lost() || c.Client("beta").Down() {
		t.Fatalf("beta did not recover inside grace")
	}
	// Placements are untouched: original devices, original node.
	if got := c.DisksOn("beta"); len(got) != 3 {
		t.Fatalf("beta holds %v after rejoin", got)
	}
	man := c.ManifestSnapshot()
	for _, d := range []int{1, 4, 7} {
		if man.Disks[d].Node != "beta" || man.Disks[d].Device != fmt.Sprintf("disk%02d", d) {
			t.Fatalf("disk %d placement changed: %+v", d, man.Disks[d])
		}
	}
	verify(c, "after rejoin")
}

// TestClusterRejoinAfterRebuildDeltaOnly: a node that returns after its
// disks were healed elsewhere gets only the delta migrated back — as
// many disks as balance requires, not a full reshuffle — paced through
// the QoS bucket so foreground reads stay fast, with the node's stale
// media scrubbed.
func TestClusterRejoinAfterRebuildDeltaOnly(t *testing.T) {
	tc := newTestCluster(t, 37)
	opts := tc.options(37)
	opts.Client.Timeout = 250 * time.Millisecond
	opts.Client.Grace = 300 * time.Millisecond
	opts.Engine.QoS = &engine.QoSConfig{RebuildRate: 100}
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()
	verify := preload(t, c, 37)

	// Kill beta past the grace window and let the heal finish.
	tc.faults["beta"].SetPartition(netdev.PartDrop)
	deadline := time.Now().Add(45 * time.Second)
	for time.Now().Before(deadline) {
		for s := int64(0); s < c.Eng.Strips(); s++ {
			c.Eng.ReadStrip(s)
		}
		st := c.Eng.Status()
		if len(c.DisksOn("beta")) == 0 && len(st.Failed) == 0 && !c.Eng.Rebuilding() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !c.Client("beta").Lost() {
		t.Fatalf("beta never declared lost")
	}
	if n := len(c.DisksOn("beta")); n != 0 {
		t.Fatalf("beta still holds %d disks after heal", n)
	}

	// The node returns. Foreground reads sample latency throughout the
	// delta migration; the pacer must keep them bounded.
	tc.faults["beta"].SetPartition(netdev.PartNone)
	throttleBefore := c.Eng.Stats().RebuildThrottleNs
	stop := make(chan struct{})
	var lats []time.Duration
	var latMu sync.Mutex
	var readErrs atomic.Int64
	go func() {
		s := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if _, err := c.Eng.ReadStrip(s % c.Eng.Strips()); err != nil {
				readErrs.Add(1)
			} else {
				latMu.Lock()
				lats = append(lats, time.Since(t0))
				latMu.Unlock()
			}
			s++
			time.Sleep(time.Millisecond)
		}
	}()

	rep, err := c.RejoinNode(NodeSpec{ID: "beta"})
	close(stop)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	// Delta only: exactly the disks balance demands (3 of 9), never a
	// full reshuffle.
	if len(rep.Moved) != 3 {
		t.Fatalf("rejoin after rebuild moved %v, want exactly the 3-disk delta", rep.Moved)
	}
	if got := c.DisksOn("beta"); len(got) != 3 {
		t.Fatalf("beta holds %v after delta migration", got)
	}
	// The migrations ran through the pacer, not at unthrottled speed.
	if after := c.Eng.Stats().RebuildThrottleNs; after <= throttleBefore {
		t.Fatalf("migration not paced: throttle %d -> %d", throttleBefore, after)
	}
	// Foreground p99 stayed bounded while the delta moved.
	latMu.Lock()
	sorted := append([]time.Duration(nil), lats...)
	latMu.Unlock()
	if len(sorted) == 0 {
		t.Fatalf("no foreground reads completed during the delta migration (%d errors)", readErrs.Load())
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	p99 := sorted[int(0.99*float64(len(sorted)-1))]
	t.Logf("foreground during rejoin delta: %d reads, p99 %v, %d errors", len(sorted), p99, readErrs.Load())
	if p99 > 250*time.Millisecond {
		t.Fatalf("foreground p99 %v during delta migration, want < 250ms", p99)
	}

	// Stale media was scrubbed: beta holds exactly its three migrated
	// placements, nothing from before it died.
	nst, err := c.Client("beta").Stat()
	if err != nil {
		t.Fatalf("stat beta: %v", err)
	}
	if len(nst.Devices) != 3 || len(nst.Blobs) != 3 {
		t.Fatalf("beta media after rejoin: %d devices %d blobs, want 3+3 (stale media must be scrubbed)", len(nst.Devices), len(nst.Blobs))
	}
	man := c.ManifestSnapshot()
	for _, d := range c.DisksOn("beta") {
		if !strings.Contains(man.Disks[d].Device, "-m") {
			t.Fatalf("disk %d on beta has non-migrated device %q", d, man.Disks[d].Device)
		}
	}
	verify(c, "after rejoin delta")
}

// TestMigrationChaosSweep is the migration durability oracle: a mixed
// workload runs while a rebalance migration is mid-copy, and a seeded
// cut lands on the source node, the destination node, or an asymmetric
// partition of the destination (requests land, acks drop). The
// migration must absorb the cut (transient: retry, not abandon), every
// acked write must read back bit-exact, and fsck must be clean.
func TestMigrationChaosSweep(t *testing.T) {
	cuts := []string{"dest", "source", "asym"}
	if testing.Short() {
		cuts = cuts[:1]
	}
	for i, cut := range cuts {
		cut := cut
		seed := int64(50 + 10*i)
		t.Run(cut, func(t *testing.T) {
			runMigrationChaos(t, seed, cut)
		})
	}
}

func runMigrationChaos(t *testing.T, seed int64, cut string) {
	tc := newTestCluster(t, seed)
	delta := tc.addNode(t, seed, "delta")
	opts := tc.options(seed)
	opts.Client.Timeout = 250 * time.Millisecond
	opts.Format = &FormatSpec{Disks: 9, Cycles: 3, StripBytes: 512}
	// Pace the copy so the cut lands mid-migration, not after it.
	opts.Engine.QoS = &engine.QoSConfig{RebuildRate: 30}
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c.Close()

	strips := c.Eng.Strips()
	const stripBytes = 512
	oracle := make([]atomic.Int64, strips)
	attempted := make([]atomic.Int64, strips)
	pattern := func(s, ver int64) []byte {
		p := make([]byte, stripBytes)
		binary.BigEndian.PutUint64(p[0:8], uint64(s))
		binary.BigEndian.PutUint64(p[8:16], uint64(ver))
		for i := 16; i < len(p); i++ {
			p[i] = byte(int64(i)*seed + s + ver)
		}
		return p
	}
	for s := int64(0); s < strips; s++ {
		if err := c.Eng.WriteStrip(s, pattern(s, 0)); err != nil {
			t.Fatalf("preload %d: %v", s, err)
		}
	}

	const workers = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ver := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for s := int64(w); s < strips; s += workers {
					ver++
					attempted[s].Store(ver)
					for attempt := 0; ; attempt++ {
						if err := c.Eng.WriteStrip(s, pattern(s, ver)); err == nil {
							oracle[s].Store(ver)
							break
						}
						if attempt > 2000 {
							t.Errorf("worker %d: strip %d never acked", w, s)
							return
						}
						time.Sleep(5 * time.Millisecond)
					}
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}(w)
	}

	addRes := make(chan error, 1)
	go func() {
		_, err := c.AddNode(delta)
		addRes <- err
	}()

	// Wait for a migration to be provably mid-copy: a committed cursor.
	var victim MigrationStatus
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if migs := c.Migrations(); len(migs) > 0 && migs[0].Cursor >= 1 {
			victim = migs[0]
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if victim.To == "" {
		t.Fatalf("no migration reached a committed cursor")
	}

	// The cut: shorter than the grace window, so it is transient by
	// contract — the migration must ride it out, never abandon.
	switch cut {
	case "source":
		tc.faults[victim.From].SetPartition(netdev.PartDrop)
	case "dest":
		tc.faults[victim.To].SetPartition(netdev.PartDrop)
	case "asym":
		tc.faults[victim.To].SetPartition(netdev.PartAsym)
	}
	time.Sleep(150 * time.Millisecond)
	for _, f := range tc.faults {
		f.SetPartition(netdev.PartNone)
	}

	select {
	case err := <-addRes:
		if err != nil {
			t.Fatalf("add node across %s cut: %v", cut, err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("rebalance never finished after %s cut", cut)
	}
	if migs := c.Migrations(); len(migs) != 0 {
		t.Fatalf("migration records left behind: %+v", migs)
	}
	if got := c.DisksOn("delta"); len(got) != 2 {
		t.Fatalf("delta holds %v after rebalance", got)
	}

	close(stop)
	wg.Wait()
	for s := int64(0); s < strips; s++ {
		got, err := c.Eng.ReadStrip(s)
		if err != nil {
			t.Fatalf("read %d: %v", s, err)
		}
		gotVer := int64(binary.BigEndian.Uint64(got[8:16]))
		acked, issued := oracle[s].Load(), attempted[s].Load()
		if gotVer < acked || gotVer > issued {
			t.Fatalf("strip %d: version %d outside [acked %d, attempted %d]", s, gotVer, acked, issued)
		}
		if !bytes.Equal(got, pattern(s, gotVer)) {
			t.Fatalf("strip %d: content matches no issued write", s)
		}
	}
	rep, err := c.Eng.Fsck(context.Background(), false)
	if err != nil || !rep.Clean {
		t.Fatalf("fsck after %s cut: %v %+v", cut, err, rep)
	}
}

// TestMigrationResumeAcrossRemount: the coordinator dies (clean Close
// here; the HA test covers the hard kill) mid-migration and the next
// open of the same state directory resumes from the last committed
// cursor — not from scratch — and completes the move.
func TestMigrationResumeAcrossRemount(t *testing.T) {
	tc := newTestCluster(t, 61)
	delta := tc.addNode(t, 61, "delta")
	opts := tc.options(61)
	opts.Format = &FormatSpec{Disks: 9, Cycles: 3, StripBytes: 512}
	// Slow pace: the copy spends most of its time waiting for tokens, so
	// Close lands mid-migration deterministically.
	opts.Engine.QoS = &engine.QoSConfig{RebuildRate: 6}
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	verify := preload(t, c, 61)
	_ = verify

	addRes := make(chan error, 1)
	go func() {
		_, err := c.AddNode(delta)
		addRes <- err
	}()

	var rec MigrationStatus
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if migs := c.Migrations(); len(migs) > 0 && migs[0].Cursor >= 1 && migs[0].Cursor < migs[0].Cycles {
			rec = migs[0]
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rec.To == "" {
		t.Fatalf("no migration reached a committed mid-copy cursor")
	}

	// Kill the coordinator mid-copy. The migration parks — its record
	// stays committed — and the membership op reports the park.
	if err := c.Close(); err != nil {
		t.Fatalf("close mid-migration: %v", err)
	}
	select {
	case err := <-addRes:
		if !errors.Is(err, errMigrationParked) {
			t.Fatalf("add node across close = %v, want a parked migration", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("add node never returned after close")
	}

	// Successor: same state dir. The resume hook must observe the
	// committed cursor — the proof it continues, not restarts.
	var resumed atomic.Pointer[MigrationRecord]
	ropts := tc.options(62)
	ropts.Format = nil
	ropts.onMigrateResume = func(r MigrationRecord) {
		cp := r
		resumed.CompareAndSwap(nil, &cp)
	}
	c2, err := Open(ropts)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	defer c2.Close()

	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if len(c2.Migrations()) == 0 && c2.ManifestSnapshot().Disks[rec.Disk].Node == rec.To {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := resumed.Load()
	if got == nil {
		t.Fatalf("resume hook never fired")
	}
	if got.Disk != rec.Disk || got.Cursor < 1 {
		t.Fatalf("resumed record %+v, want disk %d with cursor >= 1 (resume, not restart)", got, rec.Disk)
	}
	if c2.ManifestSnapshot().Disks[rec.Disk].Node != rec.To {
		t.Fatalf("disk %d never flipped to %s after resume", rec.Disk, rec.To)
	}
	if migs := c2.Migrations(); len(migs) != 0 {
		t.Fatalf("migration records left after resume: %+v", migs)
	}
	verify(c2, "after resumed migration")
}

// TestMigrationResumeAfterCoordinatorKill is the hard-kill half of
// crash safety, under PR 8's fencing: leader A is partitioned away
// mid-migration, standby B takes over at a higher epoch, resumes the
// migration from the last quorum-committed cursor and completes it —
// while A's in-flight copy writes are provably rejected stale-epoch,
// with no disk ever evicted on A's side.
func TestMigrationResumeAfterCoordinatorKill(t *testing.T) {
	h := newFailoverHarness(t)
	optsA, faultsA := h.coordOptions(t, "coord-a", 71)
	optsA.Format = &FormatSpec{Disks: 9, Cycles: 4, StripBytes: 512}
	// Slow pace on A so the kill lands mid-copy with cycles to spare.
	optsA.Engine.QoS = &engine.QoSConfig{RebuildRate: 5}
	cA, err := Open(optsA)
	if err != nil {
		t.Fatalf("open leader: %v", err)
	}
	epochA := cA.Epoch()

	data := make([]byte, 512)
	for s := int64(0); s < cA.Eng.Strips(); s++ {
		for i := range data {
			data[i] = byte(int64(i)*71 + s)
		}
		if err := cA.Eng.WriteStrip(s, data); err != nil {
			t.Fatalf("preload %d: %v", s, err)
		}
	}

	drainRes := make(chan error, 1)
	go func() {
		_, err := cA.DrainNode("gamma")
		drainRes <- err
	}()

	// Wait for a quorum-committed cursor, then remember the full record:
	// its destination is where A's zombie writes must bounce later.
	var pre MigrationStatus
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if migs := cA.Migrations(); len(migs) > 0 && migs[0].Cursor >= 1 && migs[0].Cursor < migs[0].Cycles {
			pre = migs[0]
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if pre.To == "" {
		t.Fatalf("no migration reached a committed mid-copy cursor")
	}
	raw, ok := cA.Mount.Meta.Journal().GetKV(migrateKey(pre.Disk))
	if !ok {
		t.Fatalf("migration record missing from the metadata plane")
	}
	var rec MigrationRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("decode record: %v", err)
	}

	// Kill the leader: full partition from every node, mid-copy.
	for _, f := range faultsA {
		f.SetPartition(netdev.PartDrop)
	}

	// Standby takes over and must resume from the committed cursor.
	var resumed atomic.Pointer[MigrationRecord]
	optsB, _ := h.coordOptions(t, "coord-b", 1071)
	optsB.onMigrateResume = func(r MigrationRecord) {
		cp := r
		resumed.CompareAndSwap(nil, &cp)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cB, err := Standby(ctx, optsB, StandbyOptions{Poll: 20 * time.Millisecond, FailoverAfter: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("standby takeover: %v", err)
	}
	defer cB.Close()
	if cB.Epoch() <= epochA {
		t.Fatalf("takeover epoch %d not above deposed leader's %d", cB.Epoch(), epochA)
	}

	// The successor completes the migration: record gone, placement
	// flipped off gamma.
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if len(cB.Migrations()) == 0 && cB.ManifestSnapshot().Disks[pre.Disk].Node == pre.To {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := resumed.Load()
	if got == nil {
		t.Fatalf("successor never picked up the migration record")
	}
	if got.Disk != pre.Disk || got.Cursor < pre.Cursor {
		t.Fatalf("successor resumed %+v, want disk %d from cursor >= %d (the last quorum-committed range)",
			got, pre.Disk, pre.Cursor)
	}
	if cB.ManifestSnapshot().Disks[pre.Disk].Node != pre.To {
		t.Fatalf("successor never completed the migration")
	}

	// Heal A's partition: its in-flight copy loop wakes into a world
	// that moved on. The parked verdict must surface and nothing on A's
	// side may be evicted — stale-epoch rejections are not disk faults.
	for _, f := range faultsA {
		f.SetPartition(netdev.PartNone)
	}
	select {
	case err := <-drainRes:
		if !errors.Is(err, errMigrationParked) {
			t.Fatalf("deposed leader's drain = %v, want a parked migration", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("deposed leader's drain never returned")
	}
	if st := cA.Eng.Status(); len(st.Failed) != 0 {
		t.Fatalf("stale-epoch rejections evicted disks on the ex-leader: %v", st.Failed)
	}

	// Wire-level proof of the fence: A re-sends a migration bulk write
	// to the (now authoritative) destination device with its old epoch —
	// the node quorum promised B's, so the write must die stale, never
	// land.
	an := cA.Eng.Array().Analyzer()
	strips := cA.Eng.Array().Cycles() * int64(an.SlotsPerDisk())
	dev := cA.Client(rec.Dst.Node).Device(rec.Dst.Device, strips, 512)
	staleDeadline := time.Now().Add(10 * time.Second)
	var staleErr error
	for time.Now().Before(staleDeadline) {
		staleErr = dev.WriteStripRange(0, make([]byte, 512))
		if errors.Is(staleErr, store.ErrStaleEpoch) {
			break
		}
		if staleErr == nil {
			t.Fatalf("deposed leader's migration write landed on the destination")
		}
		time.Sleep(10 * time.Millisecond) // breakers cooling down after the heal
	}
	if !errors.Is(staleErr, store.ErrStaleEpoch) {
		t.Fatalf("zombie migration write = %v, want ErrStaleEpoch", staleErr)
	}

	// B serves the data bit-exact after the resumed migration.
	for s := int64(0); s < cB.Eng.Strips(); s++ {
		got, err := cB.Eng.ReadStrip(s)
		if err != nil {
			t.Fatalf("B read %d: %v", s, err)
		}
		for i := range data {
			data[i] = byte(int64(i)*71 + s)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("strip %d differs after resumed migration", s)
		}
	}
	frep, err := cB.Eng.Fsck(context.Background(), false)
	if err != nil || !frep.Clean {
		t.Fatalf("fsck on B: %v %+v", err, frep)
	}

	if err := cA.Close(); err != nil &&
		!errors.Is(err, store.ErrStaleEpoch) && !errors.Is(err, store.ErrUnreachable) {
		t.Fatalf("deposed close: %v", err)
	}
}
