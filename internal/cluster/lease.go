package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oiraid/oiraid/internal/engine"
	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
)

// Lease timing defaults (HA mode).
const (
	defaultLeaseRenew    = 100 * time.Millisecond
	defaultStandbyPoll   = 100 * time.Millisecond
	defaultFailoverAfter = time.Second
)

// renewMissLimit is how many consecutive unconfirmed renewal rounds a
// leader tolerates before it suspends its own heartbeat.
const renewMissLimit = 3

// renewLoop keeps proving this coordinator alive to the node quorum.
// Safety never depends on it — the fencing epoch alone keeps a deposed
// coordinator harmless — renewals exist so a standby can DETECT leader
// death: it watches the renewal counters and takes over once they
// stall. A majority of stale-epoch verdicts means a rival already won;
// the loop latches deposed and stops (renewing a lost lease is noise).
//
// The asymmetric-partition trap: when the leader's requests still LAND
// on the nodes but the acks never come back, its renewals keep
// advancing the node-side counters — the nodes think the leader is
// alive while no client of the leader can get anything acked, and a
// standby watching the counters would wait forever. So a leader that
// cannot CONFIRM a quorum of renewals for renewMissLimit consecutive
// rounds suspends itself: it stops sending renewals (freezing the
// counters, letting the standby's stall detector fire) and falls back
// to read-only state probes — which advance nothing — until it either
// sees its own epoch still standing (resume) or a successor's (deposed).
func (c *Cluster) renewLoop() {
	defer c.renewWg.Done()
	t := time.NewTicker(c.leaseEvery)
	defer t.Stop()
	misses := 0
	suspended := false
	for {
		select {
		case <-c.renewStop:
			return
		case <-t.C:
		}
		epoch := c.rep.fence.Epoch()

		if suspended {
			alive, higher := c.probeEpochs(epoch)
			switch {
			case higher:
				// A successor holds a newer epoch: deposed for good. The
				// read-only floor stays — fencing already rejects our
				// writes node-side, but the floor turns each one into a
				// clean ErrReadOnly at admission instead of a late
				// ErrStaleEpoch mid-closure.
				c.rep.deposed.Store(true)
				c.Eng.ForceMode(engine.ModeReadOnly)
				return
			case alive >= c.rep.quorum():
				// The world answers again and the lease still stands:
				// nobody took over during the silence. Resume heartbeats
				// and lift the read-only floor.
				suspended, misses = false, 0
				c.Eng.ForceMode(engine.ModeNormal)
			}
			continue
		}

		var stale, confirmed atomic.Int64
		var wg sync.WaitGroup
		for _, id := range c.rep.order {
			wg.Add(1)
			go func(cl *netdev.NodeClient) {
				defer wg.Done()
				switch err := cl.RenewLease(epoch, c.rep.holder); {
				case err == nil:
					confirmed.Add(1)
				case errors.Is(err, store.ErrStaleEpoch):
					stale.Add(1)
				}
			}(c.rep.clients[id])
		}
		wg.Wait()
		if int(stale.Load()) >= c.rep.quorum() {
			c.rep.deposed.Store(true)
			c.Eng.ForceMode(engine.ModeReadOnly)
			return
		}
		if int(confirmed.Load()) < c.rep.quorum() {
			if misses++; misses >= renewMissLimit {
				// Quorum loss beyond the miss budget: demote to read-only
				// service from whatever survives until the lease is
				// confirmed standing (resume above lifts the floor).
				suspended = true
				c.Eng.ForceMode(engine.ModeReadOnly)
			}
		} else {
			misses = 0
		}
	}
}

// probeEpochs is the suspended leader's read-only check: how many nodes
// still answer, and whether any has promised a higher epoch. State
// reads advance no counters, so a suspended leader is invisible to the
// standby's stall detector — which is the point.
func (c *Cluster) probeEpochs(epoch uint64) (alive int, higher bool) {
	var aliveN, higherN atomic.Int64
	var wg sync.WaitGroup
	for _, id := range c.rep.order {
		wg.Add(1)
		go func(cl *netdev.NodeClient) {
			defer wg.Done()
			st, err := cl.FetchMetaState()
			if err != nil {
				return
			}
			aliveN.Add(1)
			if st.Epoch > epoch {
				higherN.Add(1)
			}
		}(c.rep.clients[id])
	}
	wg.Wait()
	return int(aliveN.Load()), higherN.Load() > 0
}

// Deposed reports whether a newer coordinator has fenced this one off.
// A deposed cluster keeps serving reads; every metadata and data write
// fails with store.ErrStaleEpoch.
func (c *Cluster) Deposed() bool {
	if c.rep == nil {
		return false
	}
	return c.rep.Deposed()
}

// Epoch returns the coordinator's fencing epoch (0 outside HA mode).
func (c *Cluster) Epoch() uint64 {
	if c.rep == nil {
		return 0
	}
	return c.rep.fence.Epoch()
}

// StandbyOptions tunes the failure detector of a standby coordinator.
type StandbyOptions struct {
	// Poll is the interval between metadata-state sweeps.
	Poll time.Duration
	// FailoverAfter is how long the leader's renewal signature must
	// stall (while a node quorum stays reachable) before the standby
	// takes over. It bounds fail-over time from above; too small only
	// costs a spurious takeover, never safety — fencing makes a
	// premature takeover equivalent to a deliberate one.
	FailoverAfter time.Duration
}

// Standby watches the cluster's lease heartbeat and takes over the
// moment the leader goes quiet: it polls every node's (epoch, renewal
// counter) pair, and when the combined signature stops advancing for
// FailoverAfter — with a quorum still answering, so the silence is the
// leader's fault, not a partition around the standby — it runs the
// fenced takeover (Open) and returns the live cluster. Blocks until
// takeover succeeds or ctx ends.
func Standby(ctx context.Context, opts Options, so StandbyOptions) (*Cluster, error) {
	if opts.Holder == "" {
		return nil, errors.New("cluster: standby requires a holder identity")
	}
	if len(opts.Nodes) == 0 {
		return nil, errors.New("cluster: standby requires the node list")
	}
	if so.Poll <= 0 {
		so.Poll = defaultStandbyPoll
	}
	if so.FailoverAfter <= 0 {
		so.FailoverAfter = defaultFailoverAfter
	}

	// Dedicated probe clients: single attempt, no breaker drama — a
	// missed poll just means no new signature this tick.
	copts := opts.Client
	copts.MaxAttempts = 1
	copts.OnDown, copts.OnUp = nil, nil
	clients := make([]*netdev.NodeClient, len(opts.Nodes))
	for i, n := range opts.Nodes {
		if opts.Transport != nil {
			copts.Transport = opts.Transport(n)
		}
		copts.ExpectID = n.ID
		clients[i] = netdev.NewNodeClient(n.URL, copts)
	}
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()

	quorum := len(clients)/2 + 1
	lastSig := ""
	lastMove := time.Now()
	var lastErr error
	t := time.NewTicker(so.Poll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last takeover attempt: %v)", ctx.Err(), lastErr)
			}
			return nil, ctx.Err()
		case <-t.C:
		}
		sig, responsive := leaseSignature(clients)
		if responsive < quorum {
			// Can't tell leader death from our own partition — and
			// couldn't win a lease anyway. Reset the stall clock.
			lastMove = time.Now()
			continue
		}
		if sig != lastSig {
			lastSig, lastMove = sig, time.Now()
			continue
		}
		if time.Since(lastMove) >= so.FailoverAfter {
			c, err := Open(opts)
			if err == nil {
				return c, nil
			}
			// A transient loss (quorum flapping, a rival mid-election)
			// is retried after another full quiet window; standing by
			// is the job, giving up is not.
			lastErr = err
			lastSig, lastMove = "", time.Now()
		}
	}
}

// leaseSignature snapshots the per-node (epoch, renew counter) pairs
// into a comparable string. Any live leader advances it every renewal
// interval on at least a quorum of nodes.
func leaseSignature(clients []*netdev.NodeClient) (sig string, responsive int) {
	type probe struct {
		idx int
		st  netdev.MetaState
		ok  bool
	}
	out := make([]probe, len(clients))
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *netdev.NodeClient) {
			defer wg.Done()
			st, err := cl.FetchMetaState()
			out[i] = probe{idx: i, st: st, ok: err == nil}
		}(i, cl)
	}
	wg.Wait()
	var parts []string
	for _, p := range out {
		if !p.ok {
			continue
		}
		responsive++
		parts = append(parts, fmt.Sprintf("%d:%d:%d", p.idx, p.st.Epoch, p.st.RenewSeq))
	}
	sort.Strings(parts)
	return strings.Join(parts, ","), responsive
}
