package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/oiraid/oiraid/internal/engine"
	"github.com/oiraid/oiraid/internal/store"
	"github.com/oiraid/oiraid/internal/store/netdev"
	"github.com/oiraid/oiraid/internal/testutil"
)

// failoverHarness is three shared storage nodes that two coordinators
// (leader + standby) reach through SEPARATE fault transports — so the
// leader can be partitioned away while the standby's view stays clear,
// which is exactly the asymmetric split a real fail-over sees.
type failoverHarness struct {
	nodes []*netdev.Node
	specs []NodeSpec
}

func newFailoverHarness(t *testing.T) *failoverHarness {
	t.Helper()
	h := &failoverHarness{}
	for i := 0; i < 3; i++ {
		id := []string{"alpha", "beta", "gamma"}[i]
		n := netdev.NewMemNode(id)
		srv := httptest.NewServer(n.Handler())
		t.Cleanup(srv.Close)
		h.nodes = append(h.nodes, n)
		h.specs = append(h.specs, NodeSpec{ID: id, URL: srv.URL})
	}
	return h
}

// coordOptions builds one coordinator's view of the shared nodes: its
// own state dir, its own fault transports, its own holder identity.
func (h *failoverHarness) coordOptions(t *testing.T, holder string, seed int64) (Options, map[string]*netdev.FaultTransport) {
	t.Helper()
	faults := map[string]*netdev.FaultTransport{}
	for i, s := range h.specs {
		faults[s.ID] = netdev.NewFaultTransport(nil, seed+int64(i))
	}
	opts := Options{
		Dir:   t.TempDir(),
		Nodes: h.specs,
		Client: netdev.Options{
			Timeout:          250 * time.Millisecond,
			MaxAttempts:      2,
			BaseDelay:        time.Millisecond,
			MaxDelay:         5 * time.Millisecond,
			BreakerThreshold: 4,
			BreakerCooldown:  40 * time.Millisecond,
			ProbeInterval:    25 * time.Millisecond,
			// Grace 0: never declare a node lost. The leader's failure
			// mode under test is deposition (stale epoch), not node
			// eviction — a partitioned ex-leader must come back to find
			// itself fenced, not start healing a phantom topology.
			Grace: 0,
			Seed:  seed,
		},
		Engine: engine.Options{
			Workers: 4,
			Health: &engine.HealthPolicy{
				EvictAfter:        3,
				RebuildBatch:      1,
				QuarantineProbe:   30 * time.Millisecond,
				QuarantineProbeOK: 2,
			},
		},
		Transport:  func(n NodeSpec) http.RoundTripper { return faults[n.ID] },
		Holder:     holder,
		LeaseRenew: 25 * time.Millisecond,
	}
	return opts, faults
}

// TestClusterFailoverChaosSweep is the fail-over durability oracle: a
// mixed workload runs against leader A; at a seeded random point A is
// partitioned from every node (even seeds drop traffic outright, odd
// seeds let requests land but drop the acks — the nastier half-open
// split). Standby B watches the lease heartbeat, takes over with a
// higher fencing epoch, and must serve every write A acked bit-exactly.
// When A's partition heals, its writes must be provably rejected by the
// node quorum with the stale-epoch sentinel — the split-brain race.
func TestClusterFailoverChaosSweep(t *testing.T) {
	seeds := []int64{7, 18}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFailoverSweep(t, seed)
		})
	}
}

func runFailoverSweep(t *testing.T, seed int64) {
	h := newFailoverHarness(t)
	optsA, faultsA := h.coordOptions(t, "coord-a", seed)
	optsA.Format = &FormatSpec{Disks: 9, Cycles: 2, StripBytes: 512}
	cA, err := Open(optsA)
	if err != nil {
		t.Fatalf("open leader: %v", err)
	}
	epochA := cA.Epoch()
	if epochA == 0 {
		t.Fatalf("HA leader has epoch 0")
	}

	strips := cA.Eng.Strips()
	const stripBytes = 512
	oracle := make([]atomic.Int64, strips)
	attempted := make([]atomic.Int64, strips)
	pattern := func(s, ver int64) []byte {
		p := make([]byte, stripBytes)
		binary.BigEndian.PutUint64(p[0:8], uint64(s))
		binary.BigEndian.PutUint64(p[8:16], uint64(ver))
		for i := 16; i < len(p); i++ {
			p[i] = byte(int64(i)*seed + s + ver)
		}
		return p
	}
	for s := int64(0); s < strips; s++ {
		if err := cA.Eng.WriteStrip(s, pattern(s, 1)); err != nil {
			t.Fatalf("preload %d: %v", s, err)
		}
		oracle[s].Store(1)
		attempted[s].Store(1)
	}

	// Standby B watches the heartbeat from the start.
	optsB, _ := h.coordOptions(t, "coord-b", seed+1000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type sbRes struct {
		c   *Cluster
		err error
	}
	resCh := make(chan sbRes, 1)
	go func() {
		c, err := Standby(ctx, optsB, StandbyOptions{Poll: 20 * time.Millisecond, FailoverAfter: 250 * time.Millisecond})
		resCh <- sbRes{c, err}
	}()

	// Mixed workload on A: workers own disjoint strips, bump versions,
	// and record acked vs attempted. A worker abandons ship once A is
	// clearly dead (persistent errors or a stale-epoch verdict).
	const workers = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ver := int64(1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ver++
				for s := int64(w); s < strips; s += workers {
					attempted[s].Store(ver)
					acked := false
					for attempt := 0; attempt < 40; attempt++ {
						err := cA.Eng.WriteStrip(s, pattern(s, ver))
						if err == nil {
							oracle[s].Store(ver)
							acked = true
							break
						}
						if errors.Is(err, store.ErrStaleEpoch) {
							return // deposed: this coordinator is done
						}
						select {
						case <-stop:
							return
						case <-time.After(2 * time.Millisecond):
						}
					}
					if !acked {
						return // A unreachable for the whole budget: dead
					}
				}
			}
		}(w)
	}

	// Leader must stay leader while its heartbeat is healthy: the
	// standby must NOT fire during this quiet-but-alive window (longer
	// than FailoverAfter).
	rng := rand.New(rand.NewSource(seed))
	time.Sleep(400 * time.Millisecond)
	select {
	case r := <-resCh:
		t.Fatalf("standby took over while leader alive: %+v %v", r.c, r.err)
	default:
	}

	// Kill the leader at a seeded random point in the workload. Odd
	// seeds use the asymmetric partition: A's writes keep LANDING on the
	// nodes without acks, so its stale data plane keeps firing into B's
	// reign until fencing stops it — the split-brain race in the flesh.
	time.Sleep(time.Duration(30+rng.Intn(150)) * time.Millisecond)
	part := netdev.PartDrop
	if seed%2 == 1 {
		part = netdev.PartAsym
	}
	killedAt := time.Now()
	for _, f := range faultsA {
		f.SetPartition(part)
	}

	// Standby detects the stall and takes over.
	var cB *Cluster
	select {
	case r := <-resCh:
		if r.err != nil {
			t.Fatalf("standby takeover: %v", r.err)
		}
		cB = r.c
	case <-time.After(20 * time.Second):
		t.Fatalf("standby never took over")
	}
	failoverTime := time.Since(killedAt)
	defer cB.Close()
	t.Logf("seed %d: fail-over in %v (partition=%v)", seed, failoverTime, part)

	if cB.Epoch() <= epochA {
		t.Fatalf("takeover epoch %d not above deposed leader's %d", cB.Epoch(), epochA)
	}

	// Drain A's workers, then verify on B: every strip must hold some
	// version in [acked, attempted] with bit-exact content. Acked writes
	// below the window would mean the quorum lost durable state; content
	// mismatches would mean A's zombie writes leaked past the fence.
	close(stop)
	wg.Wait()
	for s := int64(0); s < strips; s++ {
		got, err := cB.Eng.ReadStrip(s)
		if err != nil {
			t.Fatalf("B read %d: %v", s, err)
		}
		gotVer := int64(binary.BigEndian.Uint64(got[8:16]))
		acked, issued := oracle[s].Load(), attempted[s].Load()
		if gotVer < acked || gotVer > issued {
			t.Fatalf("strip %d: version %d outside [acked %d, attempted %d]", s, gotVer, acked, issued)
		}
		if !bytes.Equal(got, pattern(s, gotVer)) {
			t.Fatalf("strip %d: content matches no issued write", s)
		}
	}
	rep, err := cB.Eng.Fsck(context.Background(), false)
	if err != nil || !rep.Clean {
		t.Fatalf("fsck on B after takeover: %v %+v", err, rep)
	}

	// Heal A's partition: the ex-leader comes back to a world that has
	// moved on. Its renewals latch the deposed flag, and its writes are
	// rejected by the nodes with the stale-epoch sentinel — never
	// applied, never counted as disk faults.
	for _, f := range faultsA {
		f.SetPartition(netdev.PartNone)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !cA.Deposed() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !cA.Deposed() {
		t.Fatalf("healed ex-leader never noticed its deposition")
	}
	// Deterministic wire-level proof of the fence: a metadata append
	// carrying A's epoch bounces off every node that promised B's. The
	// epoch check runs before the generation check node-side, so the
	// rejection must be stale-epoch proper, not a stale-gen artifact.
	staleRejected := 0
	for _, id := range []string{"alpha", "beta", "gamma"} {
		err := cA.Client(id).MetaWriteAt(metaBlobJournal0, make([]byte, 1), 0, cA.Epoch(), 1)
		if errors.Is(err, store.ErrStaleEpoch) && !errors.Is(err, netdev.ErrStaleGen) {
			staleRejected++
		}
	}
	if staleRejected < 2 {
		t.Fatalf("only %d/3 nodes fenced A's metadata append", staleRejected)
	}

	// The data plane is fenced too, though what surfaces depends on what
	// the partition left behind: once the deposition latches, the serving
	// mode drops to read-only and writes die at admission (ErrReadOnly);
	// before that, a clean strip write dies on its fenced quorum journal
	// append (ErrStaleEpoch), and one whose cycle still holds an
	// abandoned intent record parks on the conflict/replay errors (the
	// replay itself is fenced, so the record can never clear). All are
	// rejections — what must never happen is an ack.
	staleDeadline := time.Now().Add(10 * time.Second)
	var staleErr error
	for time.Now().Before(staleDeadline) {
		staleErr = cA.Eng.WriteStrip(0, pattern(0, 1<<20))
		if staleErr == nil {
			t.Fatalf("deposed ex-leader acked a strip write")
		}
		if errors.Is(staleErr, store.ErrStaleEpoch) || errors.Is(staleErr, store.ErrReadOnly) {
			break
		}
		if !errors.Is(staleErr, store.ErrIntentConflict) && !errors.Is(staleErr, store.ErrIntentReplay) &&
			!store.IsTransient(staleErr) {
			t.Fatalf("ex-leader write after heal = %v, want a fence/conflict rejection", staleErr)
		}
		time.Sleep(10 * time.Millisecond) // breakers may still be cooling down
	}
	if st := cA.Eng.Status(); len(st.Failed) != 0 {
		t.Fatalf("stale-epoch rejections evicted disks on the ex-leader: %v", st.Failed)
	}

	// The node quorum has promised B's epoch to B.
	promised := 0
	for _, id := range []string{"alpha", "beta", "gamma"} {
		st, err := cB.Client(id).FetchMetaState()
		if err == nil && st.Epoch == cB.Epoch() && st.Holder == "coord-b" {
			promised++
		}
	}
	if promised < 2 {
		t.Fatalf("only %d/3 nodes promised B's epoch", promised)
	}

	// B's reign is live: fresh writes ack and read back.
	for s := int64(0); s < 4; s++ {
		want := pattern(s, 1<<20)
		if err := cB.Eng.WriteStrip(s, want); err != nil {
			t.Fatalf("B write %d: %v", s, err)
		}
		got, err := cB.Eng.ReadStrip(s)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("B read-back %d: %v", s, err)
		}
	}

	// A deposed Close may fail its seal (fenced) — that must not panic
	// or hang, and unreachable/stale are the only acceptable verdicts.
	if err := cA.Close(); err != nil &&
		!errors.Is(err, store.ErrStaleEpoch) && !errors.Is(err, store.ErrUnreachable) {
		t.Fatalf("deposed close: %v", err)
	}
}

// TestClusterHARecoverFromQuorumAlone proves the metadata plane needs
// no coordinator-local state: the leader's entire state directory is
// lost with it, and a successor with an empty dir reassembles manifest
// and journal from the node quorum and serves the old acked data.
func TestClusterHARecoverFromQuorumAlone(t *testing.T) {
	h := newFailoverHarness(t)
	optsA, _ := h.coordOptions(t, "coord-a", 3)
	optsA.Format = &FormatSpec{Disks: 9, Cycles: 2, StripBytes: 512}
	cA, err := Open(optsA)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	data := make([]byte, 512)
	for s := int64(0); s < cA.Eng.Strips(); s++ {
		for i := range data {
			data[i] = byte(int64(i)*3 + s)
		}
		if err := cA.Eng.WriteStrip(s, data); err != nil {
			t.Fatalf("write %d: %v", s, err)
		}
	}
	if err := cA.Close(); err != nil {
		t.Fatalf("close A: %v", err)
	}

	// Successor: fresh dir, no Format — everything must come from the
	// quorum (manifest recovery picks the newest parseable generation,
	// journal regions merge frame-by-frame).
	optsB, _ := h.coordOptions(t, "coord-b", 4)
	cB, err := Open(optsB)
	if err != nil {
		t.Fatalf("open successor from quorum: %v", err)
	}
	defer cB.Close()
	if cB.Epoch() <= 1 {
		t.Fatalf("successor epoch %d, want above the first reign", cB.Epoch())
	}
	man := cB.ManifestSnapshot()
	if len(man.Disks) != 9 || man.StripBytes != 512 {
		t.Fatalf("recovered manifest %+v", man)
	}
	for s := int64(0); s < cB.Eng.Strips(); s++ {
		got, err := cB.Eng.ReadStrip(s)
		if err != nil {
			t.Fatalf("read %d: %v", s, err)
		}
		for i := range data {
			data[i] = byte(int64(i)*3 + s)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("strip %d differs after quorum-only recovery", s)
		}
	}
	rep, err := cB.Eng.Fsck(context.Background(), false)
	if err != nil || !rep.Clean {
		t.Fatalf("fsck: %v %+v", err, rep)
	}
}

// TestClusterHACloseLeavesNoGoroutines is the HA leak guard: Close must
// drain the lease-renewal loop alongside the probe and breaker
// goroutines — a renewal firing after Close would be a zombie
// coordinator heartbeat.
func TestClusterHACloseLeavesNoGoroutines(t *testing.T) {
	h := newFailoverHarness(t)
	guard := testutil.NewLeakGuard()
	opts, _ := h.coordOptions(t, "coord-a", 9)
	opts.Format = &FormatSpec{Disks: 9, Cycles: 2, StripBytes: 512}
	c, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	data := make([]byte, 512)
	for s := int64(0); s < 8; s++ {
		if err := c.Eng.WriteStrip(s, data); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	// Let several renewal ticks fire so the loop is provably live.
	time.Sleep(100 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	guard.Check(t)
	// Idempotent: a second Close must not hang on the drained loop.
	if err := c.Close(); err != nil && !errors.Is(err, engine.ErrClosed) && !errors.Is(err, store.ErrClosed) {
		t.Fatalf("second close: %v", err)
	}
}

// TestStandbyValidation pins the standby's preconditions and context
// hygiene.
func TestStandbyValidation(t *testing.T) {
	h := newFailoverHarness(t)
	if _, err := Standby(context.Background(), Options{Nodes: h.specs}, StandbyOptions{}); err == nil {
		t.Fatalf("standby without holder accepted")
	}
	if _, err := Standby(context.Background(), Options{Holder: "x"}, StandbyOptions{}); err == nil {
		t.Fatalf("standby without nodes accepted")
	}
	opts, _ := h.coordOptions(t, "coord-x", 11)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	// No leader has ever run: signature never advances, but the nodes
	// answer — the standby WOULD take over, except there is nothing to
	// mount (no manifest, no format) and it must keep retrying until the
	// context ends rather than give up.
	if _, err := Standby(ctx, opts, StandbyOptions{Poll: 10 * time.Millisecond, FailoverAfter: 30 * time.Millisecond}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("standby with nothing to mount: %v, want deadline exceeded", err)
	}
}
