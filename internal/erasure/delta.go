package erasure

import (
	"fmt"

	"github.com/oiraid/oiraid/internal/gf"
)

// DeltaUpdater is implemented by codes that can apply a small write to
// their parity shards without reading the rest of the stripe — the
// read-modify-write path whose cost the paper calls "optimal data update
// complexity". Both layers of OI-RAID use it.
type DeltaUpdater interface {
	// UpdateParity folds the change of data shard idx from oldData to
	// newData into the parity shards, which must hold the current parity
	// and are updated in place. All slices must share one length.
	UpdateParity(idx int, oldData, newData []byte, parity [][]byte) error
}

var (
	_ DeltaUpdater = (*XOR)(nil)
	_ DeltaUpdater = (*ReedSolomon)(nil)
)

// UpdateParity implements DeltaUpdater: parity ^= old ^ new.
func (x *XOR) UpdateParity(idx int, oldData, newData []byte, parity [][]byte) error {
	if idx < 0 || idx >= x.k {
		return fmt.Errorf("erasure: xor delta index %d out of range", idx)
	}
	if len(parity) != 1 || len(parity[0]) != len(oldData) || len(newData) != len(oldData) {
		return ErrShardSize
	}
	p := parity[0]
	for i := range p {
		p[i] ^= oldData[i] ^ newData[i]
	}
	return nil
}

// UpdateParity implements DeltaUpdater:
// parity_j ^= G[j][idx]·(old ^ new).
func (r *ReedSolomon) UpdateParity(idx int, oldData, newData []byte, parity [][]byte) error {
	if idx < 0 || idx >= r.k {
		return fmt.Errorf("erasure: rs delta index %d out of range", idx)
	}
	if len(parity) != r.m || len(newData) != len(oldData) {
		return ErrShardSize
	}
	delta := make([]byte, len(oldData))
	for i := range delta {
		delta[i] = oldData[i] ^ newData[i]
	}
	for j, p := range parity {
		if len(p) != len(oldData) {
			return ErrShardSize
		}
		gf.MulAddSlice256(r.parity[j][idx], delta, p)
	}
	return nil
}
