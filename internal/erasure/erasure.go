// Package erasure implements the byte-level erasure codes used by both
// layers of OI-RAID and by the baseline arrays:
//
//   - XOR: single-parity RAID4/RAID5-style code (the paper deploys RAID5 in
//     both OI-RAID layers).
//   - ReedSolomon: systematic MDS code with m parity shards over GF(2^8)
//     (used by the RAID6 baseline and available for stronger inner/outer
//     codes).
//
// Both satisfy Code. Shards are equal-length byte slices; the first k hold
// data, the last m parity.
package erasure

import (
	"errors"
	"fmt"

	"github.com/oiraid/oiraid/internal/gf"
	"github.com/oiraid/oiraid/internal/matrix"
)

// Common errors.
var (
	ErrShardCount  = errors.New("erasure: wrong number of shards")
	ErrShardSize   = errors.New("erasure: shards have unequal or zero length")
	ErrTooManyLost = errors.New("erasure: more shards lost than parity can repair")
)

// Code is a systematic erasure code over byte shards.
type Code interface {
	// DataShards returns k, the number of data shards.
	DataShards() int
	// ParityShards returns m, the number of parity shards. The code repairs
	// any m lost shards.
	ParityShards() int
	// Encode computes the parity shards from the data shards. shards must
	// hold k+m equal-length slices; the first k are read, the last m
	// overwritten.
	Encode(shards [][]byte) error
	// Reconstruct repairs the shards flagged false in present (both data
	// and parity), given that at least k shards are present. Missing shards
	// must still be allocated at full length; their contents are
	// overwritten.
	Reconstruct(shards [][]byte, present []bool) error
	// Verify reports whether the parity shards are consistent with the data
	// shards.
	Verify(shards [][]byte) (bool, error)
}

// checkShards validates shard count and sizes for a k+m code.
func checkShards(shards [][]byte, k, m int) (size int, err error) {
	if len(shards) != k+m {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), k+m)
	}
	size = len(shards[0])
	if size == 0 {
		return 0, ErrShardSize
	}
	for _, s := range shards[1:] {
		if len(s) != size {
			return 0, ErrShardSize
		}
	}
	return size, nil
}

// XOR is the single-parity code: parity = data_0 ⊕ … ⊕ data_{k-1}.
// The zero value is unusable; use NewXOR.
type XOR struct {
	k int
}

// NewXOR returns a k+1 XOR code. k must be ≥ 1.
func NewXOR(k int) (*XOR, error) {
	if k < 1 {
		return nil, fmt.Errorf("erasure: xor data shards %d < 1", k)
	}
	return &XOR{k: k}, nil
}

var _ Code = (*XOR)(nil)

// DataShards implements Code.
func (x *XOR) DataShards() int { return x.k }

// ParityShards implements Code.
func (x *XOR) ParityShards() int { return 1 }

// Encode implements Code.
func (x *XOR) Encode(shards [][]byte) error {
	size, err := checkShards(shards, x.k, 1)
	if err != nil {
		return err
	}
	parity := shards[x.k]
	copy(parity, shards[0])
	if len(shards[0]) < size {
		return ErrShardSize
	}
	for _, s := range shards[1:x.k] {
		gf.XorSlice(s, parity)
	}
	return nil
}

// Reconstruct implements Code.
func (x *XOR) Reconstruct(shards [][]byte, present []bool) error {
	if _, err := checkShards(shards, x.k, 1); err != nil {
		return err
	}
	if len(present) != x.k+1 {
		return fmt.Errorf("%w: present mask length %d", ErrShardCount, len(present))
	}
	missing := -1
	for i, p := range present {
		if p {
			continue
		}
		if missing >= 0 {
			return fmt.Errorf("%w: shards %d and %d both missing", ErrTooManyLost, missing, i)
		}
		missing = i
	}
	if missing < 0 {
		return nil
	}
	dst := shards[missing]
	for i := range dst {
		dst[i] = 0
	}
	for i, s := range shards {
		if i == missing {
			continue
		}
		gf.XorSlice(s, dst)
	}
	return nil
}

// Verify implements Code.
func (x *XOR) Verify(shards [][]byte) (bool, error) {
	size, err := checkShards(shards, x.k, 1)
	if err != nil {
		return false, err
	}
	acc := make([]byte, size)
	for _, s := range shards {
		gf.XorSlice(s, acc)
	}
	for _, b := range acc {
		if b != 0 {
			return false, nil
		}
	}
	return true, nil
}

// ReedSolomon is a systematic MDS code with k data and m parity shards,
// built from an extended Vandermonde generator matrix over GF(2^8).
// The zero value is unusable; use NewReedSolomon.
type ReedSolomon struct {
	k, m   int
	gen    matrix.Matrix // (k+m)×k generator; top k rows are the identity
	parity matrix.Matrix // bottom m rows of gen
}

// NewReedSolomon returns a k+m Reed–Solomon code. Requires k ≥ 1, m ≥ 1,
// k+m ≤ 256.
func NewReedSolomon(k, m int) (*ReedSolomon, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("erasure: rs shards k=%d m=%d out of range", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("erasure: rs total shards %d > 256", k+m)
	}
	// Build a systematic generator: take the (k+m)×k Vandermonde matrix and
	// normalise its top k×k block to the identity by multiplying with its
	// inverse on the right. The result keeps the any-k-rows-invertible
	// property.
	vm := matrix.Vandermonde(k+m, k)
	top := vm.SubMatrix(0, k, 0, k)
	topInv, err := top.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: vandermonde top block: %w", err)
	}
	gen, err := vm.Mul(topInv)
	if err != nil {
		return nil, err
	}
	return &ReedSolomon{
		k:      k,
		m:      m,
		gen:    gen,
		parity: gen.SubMatrix(k, k+m, 0, k),
	}, nil
}

var _ Code = (*ReedSolomon)(nil)

// DataShards implements Code.
func (r *ReedSolomon) DataShards() int { return r.k }

// ParityShards implements Code.
func (r *ReedSolomon) ParityShards() int { return r.m }

// Encode implements Code.
func (r *ReedSolomon) Encode(shards [][]byte) error {
	if _, err := checkShards(shards, r.k, r.m); err != nil {
		return err
	}
	r.codeShards(r.parity, shards[:r.k], shards[r.k:])
	return nil
}

// codeShards computes out = coeff · in, shard-wise.
func (r *ReedSolomon) codeShards(coeff matrix.Matrix, in, out [][]byte) {
	for i, row := range coeff {
		dst := out[i]
		for j := range dst {
			dst[j] = 0
		}
		for j, c := range row {
			if c != 0 {
				gf.MulAddSlice256(c, in[j], dst)
			}
		}
	}
}

// Reconstruct implements Code.
func (r *ReedSolomon) Reconstruct(shards [][]byte, present []bool) error {
	if _, err := checkShards(shards, r.k, r.m); err != nil {
		return err
	}
	if len(present) != r.k+r.m {
		return fmt.Errorf("%w: present mask length %d", ErrShardCount, len(present))
	}
	var missing, available []int
	for i, p := range present {
		if p {
			available = append(available, i)
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > r.m {
		return fmt.Errorf("%w: %d lost, %d parity", ErrTooManyLost, len(missing), r.m)
	}
	// Pick k available shards; invert the corresponding generator rows to
	// express the data shards in terms of them, then re-encode.
	rows := available[:r.k]
	dec, err := r.gen.SelectRows(rows).Invert()
	if err != nil {
		return fmt.Errorf("erasure: decode matrix: %w", err)
	}
	in := make([][]byte, r.k)
	for i, idx := range rows {
		in[i] = shards[idx]
	}
	// Recover missing data shards first.
	var dataRows matrix.Matrix
	var dataOut [][]byte
	for _, idx := range missing {
		if idx < r.k {
			dataRows = append(dataRows, dec[idx])
			dataOut = append(dataOut, shards[idx])
		}
	}
	if len(dataRows) > 0 {
		r.codeShards(dataRows, in, dataOut)
	}
	// Then recompute missing parity from the (now complete) data shards.
	var parRows matrix.Matrix
	var parOut [][]byte
	for _, idx := range missing {
		if idx >= r.k {
			parRows = append(parRows, r.parity[idx-r.k])
			parOut = append(parOut, shards[idx])
		}
	}
	if len(parRows) > 0 {
		r.codeShards(parRows, shards[:r.k], parOut)
	}
	return nil
}

// Verify implements Code.
func (r *ReedSolomon) Verify(shards [][]byte) (bool, error) {
	size, err := checkShards(shards, r.k, r.m)
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for i, row := range r.parity {
		for j := range buf {
			buf[j] = 0
		}
		for j, c := range row {
			if c != 0 {
				gf.MulAddSlice256(c, shards[j], buf)
			}
		}
		want := shards[r.k+i]
		for j := range buf {
			if buf[j] != want[j] {
				return false, nil
			}
		}
	}
	return true, nil
}

// NewCode returns the natural code for k data shards and m parity shards:
// XOR when m == 1 (both OI-RAID layers), Reed–Solomon otherwise.
func NewCode(k, m int) (Code, error) {
	if m == 1 {
		return NewXOR(k)
	}
	return NewReedSolomon(k, m)
}

// AllocShards returns k+m zeroed shards of the given size backed by one
// allocation.
func AllocShards(k, m, size int) [][]byte {
	backing := make([]byte, (k+m)*size)
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i], backing = backing[:size:size], backing[size:]
	}
	return shards
}
