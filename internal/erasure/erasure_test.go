package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func fillRandom(shards [][]byte, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, s := range shards {
		for i := range s {
			s[i] = byte(rng.Intn(256))
		}
	}
}

func cloneShards(shards [][]byte) [][]byte {
	out := make([][]byte, len(shards))
	for i, s := range shards {
		out[i] = append([]byte(nil), s...)
	}
	return out
}

func TestNewXORValidation(t *testing.T) {
	if _, err := NewXOR(0); err == nil {
		t.Fatal("NewXOR(0) should fail")
	}
	if _, err := NewXOR(1); err != nil {
		t.Fatalf("NewXOR(1): %v", err)
	}
}

func TestNewReedSolomonValidation(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {200, 100}} {
		if _, err := NewReedSolomon(tc[0], tc[1]); err == nil {
			t.Fatalf("NewReedSolomon(%d,%d) should fail", tc[0], tc[1])
		}
	}
	if _, err := NewReedSolomon(10, 4); err != nil {
		t.Fatal(err)
	}
}

func TestXOREncodeVerifyReconstruct(t *testing.T) {
	for _, k := range []int{1, 2, 3, 6, 10} {
		code, err := NewXOR(k)
		if err != nil {
			t.Fatal(err)
		}
		shards := AllocShards(k, 1, 1024)
		fillRandom(shards[:k], int64(k))
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		ok, err := code.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("k=%d: Verify = %v, %v", k, ok, err)
		}
		// Lose each single shard in turn; reconstruct; compare.
		for lost := 0; lost <= k; lost++ {
			work := cloneShards(shards)
			present := make([]bool, k+1)
			for i := range present {
				present[i] = i != lost
			}
			for i := range work[lost] {
				work[lost][i] = 0xAA
			}
			if err := code.Reconstruct(work, present); err != nil {
				t.Fatalf("k=%d lost=%d: %v", k, lost, err)
			}
			if !bytes.Equal(work[lost], shards[lost]) {
				t.Fatalf("k=%d lost=%d: reconstruction mismatch", k, lost)
			}
		}
	}
}

func TestXORRejectsDoubleLoss(t *testing.T) {
	code, _ := NewXOR(3)
	shards := AllocShards(3, 1, 64)
	fillRandom(shards[:3], 5)
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	present := []bool{false, true, false, true}
	if err := code.Reconstruct(shards, present); !errors.Is(err, ErrTooManyLost) {
		t.Fatalf("expected ErrTooManyLost, got %v", err)
	}
}

func TestXORVerifyDetectsCorruption(t *testing.T) {
	code, _ := NewXOR(4)
	shards := AllocShards(4, 1, 256)
	fillRandom(shards[:4], 9)
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[2][100] ^= 1
	ok, err := code.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Verify missed corruption")
	}
}

func TestReedSolomonRoundTrip(t *testing.T) {
	configs := [][2]int{{2, 2}, {4, 2}, {6, 3}, {10, 4}, {1, 1}, {17, 3}}
	for _, cfg := range configs {
		k, m := cfg[0], cfg[1]
		code, err := NewReedSolomon(k, m)
		if err != nil {
			t.Fatal(err)
		}
		if code.DataShards() != k || code.ParityShards() != m {
			t.Fatalf("(%d,%d): shard counts wrong", k, m)
		}
		shards := AllocShards(k, m, 512)
		fillRandom(shards[:k], int64(k*100+m))
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		ok, err := code.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("(%d,%d): Verify = %v, %v", k, m, ok, err)
		}
	}
}

// TestReedSolomonAllErasurePatterns: for a small code, every loss pattern
// of size ≤ m must reconstruct exactly.
func TestReedSolomonAllErasurePatterns(t *testing.T) {
	const k, m = 5, 3
	code, err := NewReedSolomon(k, m)
	if err != nil {
		t.Fatal(err)
	}
	shards := AllocShards(k, m, 128)
	fillRandom(shards[:k], 77)
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	n := k + m
	for mask := 0; mask < 1<<n; mask++ {
		lost := 0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				lost++
			}
		}
		work := cloneShards(shards)
		present := make([]bool, n)
		for i := 0; i < n; i++ {
			present[i] = mask>>i&1 == 0
			if !present[i] {
				for j := range work[i] {
					work[i][j] = 0xEE
				}
			}
		}
		err := code.Reconstruct(work, present)
		if lost > m {
			if !errors.Is(err, ErrTooManyLost) {
				t.Fatalf("mask %b: expected ErrTooManyLost, got %v", mask, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := range shards {
			if !bytes.Equal(work[i], shards[i]) {
				t.Fatalf("mask %b: shard %d mismatch", mask, i)
			}
		}
	}
}

// TestQuickReedSolomon is a property test: random data, random loss pattern
// of size ≤ m, reconstruction is exact.
func TestQuickReedSolomon(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	prop := func() bool {
		k := 1 + rng.Intn(12)
		m := 1 + rng.Intn(4)
		size := 1 + rng.Intn(300)
		code, err := NewReedSolomon(k, m)
		if err != nil {
			return false
		}
		shards := AllocShards(k, m, size)
		fillRandom(shards[:k], rng.Int63())
		if err := code.Encode(shards); err != nil {
			return false
		}
		orig := cloneShards(shards)
		present := make([]bool, k+m)
		for i := range present {
			present[i] = true
		}
		for lost := rng.Intn(m + 1); lost > 0; {
			i := rng.Intn(k + m)
			if present[i] {
				present[i] = false
				for j := range shards[i] {
					shards[i][j] = 0
				}
				lost--
			}
		}
		if err := code.Reconstruct(shards, present); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShardValidation(t *testing.T) {
	code, _ := NewReedSolomon(3, 2)
	if err := code.Encode(AllocShards(2, 2, 16)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("expected ErrShardCount, got %v", err)
	}
	bad := AllocShards(3, 2, 16)
	bad[4] = bad[4][:8]
	if err := code.Encode(bad); !errors.Is(err, ErrShardSize) {
		t.Fatalf("expected ErrShardSize, got %v", err)
	}
	empty := make([][]byte, 5)
	for i := range empty {
		empty[i] = nil
	}
	if err := code.Encode(empty); !errors.Is(err, ErrShardSize) {
		t.Fatalf("expected ErrShardSize for empty shards, got %v", err)
	}
	if err := code.Reconstruct(AllocShards(3, 2, 16), []bool{true}); !errors.Is(err, ErrShardCount) {
		t.Fatalf("expected ErrShardCount for bad mask, got %v", err)
	}
}

func TestNewCodeSelection(t *testing.T) {
	c, err := NewCode(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*XOR); !ok {
		t.Fatalf("NewCode(4,1) = %T, want *XOR", c)
	}
	c, err = NewCode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*ReedSolomon); !ok {
		t.Fatalf("NewCode(4,2) = %T, want *ReedSolomon", c)
	}
}

func TestReedSolomonVerifyDetectsCorruption(t *testing.T) {
	code, _ := NewReedSolomon(4, 2)
	shards := AllocShards(4, 2, 64)
	fillRandom(shards[:4], 13)
	if err := code.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[5][3] ^= 0x40
	ok, err := code.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify = %v, %v; want false, nil", ok, err)
	}
}

func benchmarkEncode(b *testing.B, code Code, size int) {
	k, m := code.DataShards(), code.ParityShards()
	shards := AllocShards(k, m, size)
	fillRandom(shards[:k], 1)
	b.SetBytes(int64(k * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXOREncode8x64K(b *testing.B) {
	code, _ := NewXOR(8)
	benchmarkEncode(b, code, 64<<10)
}

func BenchmarkRSEncode8p2x64K(b *testing.B) {
	code, _ := NewReedSolomon(8, 2)
	benchmarkEncode(b, code, 64<<10)
}

func BenchmarkRSReconstruct8p2x64K(b *testing.B) {
	code, _ := NewReedSolomon(8, 2)
	shards := AllocShards(8, 2, 64<<10)
	fillRandom(shards[:8], 1)
	if err := code.Encode(shards); err != nil {
		b.Fatal(err)
	}
	present := make([]bool, 10)
	for i := range present {
		present[i] = i != 3 && i != 7
	}
	b.SetBytes(64 << 10 * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.Reconstruct(shards, present); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDeltaUpdateMatchesReencode: applying a small write via UpdateParity
// must give bit-identical parity to re-encoding the whole stripe.
func TestDeltaUpdateMatchesReencode(t *testing.T) {
	for _, cfg := range [][2]int{{4, 1}, {5, 2}, {8, 3}} {
		k, m := cfg[0], cfg[1]
		code, err := NewCode(k, m)
		if err != nil {
			t.Fatal(err)
		}
		du, ok := code.(DeltaUpdater)
		if !ok {
			t.Fatalf("(%d,%d) code does not support delta updates", k, m)
		}
		shards := AllocShards(k, m, 256)
		fillRandom(shards[:k], int64(k+m))
		if err := code.Encode(shards); err != nil {
			t.Fatal(err)
		}
		for idx := 0; idx < k; idx++ {
			oldData := append([]byte(nil), shards[idx]...)
			newData := make([]byte, 256)
			rng := rand.New(rand.NewSource(int64(idx)))
			for i := range newData {
				newData[i] = byte(rng.Intn(256))
			}
			// Delta path.
			parity := make([][]byte, m)
			for j := range parity {
				parity[j] = append([]byte(nil), shards[k+j]...)
			}
			if err := du.UpdateParity(idx, oldData, newData, parity); err != nil {
				t.Fatal(err)
			}
			// Reference: full re-encode.
			ref := cloneShards(shards)
			copy(ref[idx], newData)
			if err := code.Encode(ref); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < m; j++ {
				if !bytes.Equal(parity[j], ref[k+j]) {
					t.Fatalf("(%d,%d) idx=%d: delta parity %d mismatch", k, m, idx, j)
				}
			}
		}
	}
}

func TestDeltaUpdateValidation(t *testing.T) {
	x, _ := NewXOR(3)
	buf := make([]byte, 8)
	if err := x.UpdateParity(5, buf, buf, [][]byte{buf}); err == nil {
		t.Fatal("out-of-range index must fail")
	}
	if err := x.UpdateParity(0, buf, buf, [][]byte{buf, buf}); err == nil {
		t.Fatal("wrong parity count must fail")
	}
	r, _ := NewReedSolomon(3, 2)
	if err := r.UpdateParity(0, buf, buf[:4], [][]byte{buf, buf}); err == nil {
		t.Fatal("mismatched sizes must fail")
	}
	if err := r.UpdateParity(-1, buf, buf, [][]byte{buf, buf}); err == nil {
		t.Fatal("negative index must fail")
	}
}
